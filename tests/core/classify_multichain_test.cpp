// Multi-chain classification: faults that touch several chains, and the
// per-chain last-location rule (a fault is Easy if at least one chain's last
// affected location is a pure category-1 event — the flush watches every
// scan-out at once).
#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/grouping.h"
#include "fault/seq_fault_sim.h"
#include "scan/scan_sequences.h"

namespace fsct {
namespace {

constexpr Val k1 = Val::One;

// Two 2-FF chains; a shared control PI `en` (forced 1) gates the last
// segment of both chains.
struct TwoChains {
  Netlist nl{"two_chains"};
  ScanDesign d;
  NodeId en, a1, a2;

  TwoChains() {
    const NodeId scan_mode = nl.add_input("scan_mode");
    const NodeId si0 = nl.add_input("si0");
    const NodeId si1 = nl.add_input("si1");
    en = nl.add_input("en");

    const NodeId f10 = nl.add_dff(si0, "f10");
    a1 = nl.add_gate(GateType::And, {f10, en}, "a1");
    const NodeId f11 = nl.add_dff(a1, "f11");

    const NodeId f20 = nl.add_dff(si1, "f20");
    a2 = nl.add_gate(GateType::And, {f20, en}, "a2");
    const NodeId f21 = nl.add_dff(a2, "f21");

    nl.mark_output(f11);
    nl.mark_output(f21);

    d.scan_mode = scan_mode;
    d.pi_constraints = {{scan_mode, Val::One}, {en, Val::One}};
    auto seg = [](NodeId from, NodeId to, std::vector<NodeId> path) {
      ScanSegment s;
      s.from = from;
      s.to = to;
      s.path = std::move(path);
      s.functional = true;
      return s;
    };
    ScanChain c0;
    c0.scan_in = si0;
    c0.ffs = {f10, f11};
    c0.segments = {seg(si0, f10, {}), seg(f10, f11, {a1})};
    ScanChain c1;
    c1.scan_in = si1;
    c1.ffs = {f20, f21};
    c1.segments = {seg(si1, f20, {}), seg(f20, f21, {a2})};
    d.chains = {c0, c1};
  }
};

TEST(ClassifyMultiChain, SharedControlFaultHitsBothChains) {
  TwoChains w;
  const Levelizer lv(w.nl);
  const ScanModeModel model(lv, w.d);
  ASSERT_EQ(model.check(), "");
  ChainFaultClassifier cls(model);
  // en s-a-0 pins BOTH chains' last segments to 0: category 1 everywhere.
  const ChainFaultInfo info = cls.classify({w.en, -1, false});
  EXPECT_TRUE(info.multi_chain);
  EXPECT_EQ(info.category, ChainFaultCategory::Easy);
  // Per chain: the stuck segment (1) and the latched scan-out Q (2).
  ASSERT_EQ(info.locations.size(), 4u);
  EXPECT_EQ(info.locations[0].chain, 0);
  EXPECT_EQ(info.locations[3].chain, 1);
}

TEST(ClassifyMultiChain, MultiChainFaultWindowsFeedGrouping) {
  TwoChains w;
  const Levelizer lv(w.nl);
  const ScanModeModel model(lv, w.d);
  ChainFaultClassifier cls(model);
  const ChainFaultInfo info = cls.classify({w.en, -1, false});
  const FaultWindow fw = make_fault_window(0, info);
  EXPECT_TRUE(fw.multi_chain());
  const auto groups = make_groups({fw}, DistanceParams{});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].kind, 1);  // multi-chain faults always group 1
  EXPECT_EQ(groups[0].window.size(), 2u);
}

TEST(ClassifyMultiChain, SingleChainFaultLeavesOtherChainClean) {
  TwoChains w;
  const Levelizer lv(w.nl);
  const ScanModeModel model(lv, w.d);
  ChainFaultClassifier cls(model);
  const ChainFaultInfo info = cls.classify({w.a1, -1, true});
  EXPECT_FALSE(info.multi_chain);
  ASSERT_FALSE(info.locations.empty());
  for (const ChainLocation& loc : info.locations) {
    EXPECT_EQ(loc.chain, 0);
  }
}

TEST(ClassifyMultiChain, FlushCatchesTheSharedControlFault) {
  TwoChains w;
  const Levelizer lv(w.nl);
  const ScanModeModel model(lv, w.d);
  const ScanSequenceBuilder sb(w.nl, w.d);
  std::vector<NodeId> observe = model.scan_outs();
  SeqFaultSim sim(lv, observe);
  const Fault faults[] = {{w.en, -1, false}};
  const auto r = sim.run_serial(sb.alternating(16), faults);
  EXPECT_GE(r.detect_cycle[0], 0);
}

TEST(ClassifyMultiChain, ScanInOfOneChainOnlyTouchesThatChain) {
  TwoChains w;
  const Levelizer lv(w.nl);
  const ScanModeModel model(lv, w.d);
  ChainFaultClassifier cls(model);
  const ChainFaultInfo info = cls.classify({w.nl.find("si1"), -1, true});
  EXPECT_FALSE(info.multi_chain);
  ASSERT_FALSE(info.locations.empty());
  EXPECT_EQ(info.locations[0].chain, 1);
  EXPECT_EQ(info.locations[0].segment, 0);
  (void)k1;
}

}  // namespace
}  // namespace fsct
