#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "core/report.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct Built {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  explicit Built(Netlist n, TpiOptions topt = {})
      : nl(std::move(n)),
        design(run_tpi(nl, topt)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
  Built(ExampleDesign e)
      : nl(std::move(e.nl)),
        design(std::move(e.design)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
};

TEST(Pipeline, Figure2EndToEnd) {
  Built b(paper_figure2());
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  EXPECT_EQ(r.total_faults, b.faults.size());
  EXPECT_GT(r.easy, 0u);
  EXPECT_GT(r.hard, 0u);
  // Everything classified Easy is really caught by the alternating flush.
  EXPECT_EQ(r.easy_verified, r.easy);
  // The headline fault (en s-a-0) ends up detected by step 2 or 3.
  std::size_t en_idx = b.faults.size();
  const Fault en_fault = paper_figure2_fault(b.nl);
  for (std::size_t i = 0; i < b.faults.size(); ++i) {
    if (b.faults[i] == en_fault) en_idx = i;
  }
  ASSERT_LT(en_idx, b.faults.size());
  EXPECT_TRUE(r.outcome[en_idx] == FaultOutcome::DetectedFlush ||
              r.outcome[en_idx] == FaultOutcome::DetectedComb ||
              r.outcome[en_idx] == FaultOutcome::DetectedSeq ||
              r.outcome[en_idx] == FaultOutcome::DetectedFinal)
      << static_cast<int>(r.outcome[en_idx]);
  EXPECT_EQ(r.final_undetected(), 0u);
}

TEST(Pipeline, AccountingAddsUp) {
  Built b(small_pipeline());
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults);
  EXPECT_EQ(r.affecting(), r.easy + r.hard);
  EXPECT_EQ(r.hard, r.flush_detected + r.s2_detected + r.s2_undetectable +
                        r.s2_undetected);
  EXPECT_EQ(r.s2_undetected, r.s3_detected + r.s3_undetectable +
                                 r.s3_undetected);
  // Outcomes agree with counters.
  std::size_t flush = 0, det2 = 0, det3 = 0, undetectable = 0, undetected = 0;
  for (FaultOutcome o : r.outcome) {
    flush += (o == FaultOutcome::DetectedFlush);
    det2 += (o == FaultOutcome::DetectedComb);
    det3 += (o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal);
    undetectable += (o == FaultOutcome::Undetectable);
    undetected += (o == FaultOutcome::Undetected);
  }
  EXPECT_EQ(flush, r.flush_detected);
  EXPECT_EQ(det2, r.s2_detected);
  EXPECT_EQ(det3, r.s3_detected);
  EXPECT_EQ(undetectable, r.s2_undetectable + r.s3_undetectable);
  EXPECT_EQ(undetected, r.s3_undetected);
}

TEST(Pipeline, NoDominanceReportsNoDominanceActivity) {
  Built b(small_pipeline());
  PipelineOptions opt;
  opt.dominance = false;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  EXPECT_EQ(r.dominance_targets, 0u);
  EXPECT_EQ(r.flush_detected, 0u);
  EXPECT_EQ(r.ledger_dropped, 0u);
  for (FaultOutcome o : r.outcome) {
    EXPECT_NE(o, FaultOutcome::DetectedFlush);
  }
}

TEST(Pipeline, DominanceModesAgreeOnDetectedStatus) {
  // Dominance is an ordering + crediting layer: for this suite circuit both
  // modes must cover exactly the same fault set, even though the *step* that
  // covers a given fault may move (flush credit, ledger credit).
  Built b(small_pipeline());
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult with = run_fsct_pipeline(b.model, b.faults, opt);
  opt.dominance = false;
  const PipelineResult without = run_fsct_pipeline(b.model, b.faults, opt);
  ASSERT_EQ(with.outcome.size(), without.outcome.size());
  EXPECT_EQ(with.easy, without.easy);
  EXPECT_EQ(with.hard, without.hard);
  auto detected = [](FaultOutcome o) {
    return o == FaultOutcome::DetectedFlush || o == FaultOutcome::DetectedComb ||
           o == FaultOutcome::DetectedSeq || o == FaultOutcome::DetectedFinal;
  };
  for (std::size_t i = 0; i < with.outcome.size(); ++i) {
    EXPECT_EQ(detected(with.outcome[i]), detected(without.outcome[i]))
        << fault_name(b.nl, b.faults[i]);
  }
}

TEST(Pipeline, DetectionCurveMonotone) {
  Built b(small_counter());
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults);
  EXPECT_EQ(r.detection_curve.size(), r.s2_vectors);
  for (std::size_t i = 1; i < r.detection_curve.size(); ++i) {
    EXPECT_GE(r.detection_curve[i], r.detection_curve[i - 1]);
  }
  if (!r.detection_curve.empty()) {
    EXPECT_EQ(r.detection_curve.back(), r.s2_detected);
  }
}

class PipelineRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineRandom, HighCoverageOnRandomCircuits) {
  RandomCircuitSpec spec;
  spec.num_gates = 300;
  spec.num_ffs = 24;
  spec.num_pis = 8;
  spec.num_pos = 6;
  spec.seed = GetParam();
  Built b(make_random_sequential(spec));
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  EXPECT_GT(r.affecting(), 0u);
  // The paper reaches ~99.98% of chain-affecting faults; demand >= 95% here.
  EXPECT_LE(r.final_undetected() * 20, r.affecting())
      << "undetected " << r.s3_undetected << " of " << r.affecting();
  // Alternating covers all classified-easy faults.
  EXPECT_EQ(r.easy_verified, r.easy) << "a category-1 fault escaped the flush";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRandom,
                         ::testing::Values(101ull, 202ull, 303ull));

TEST(Pipeline, ReportRowsMatchResult) {
  Built b(small_pipeline());
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults);
  const Table2Row t2 = to_table2("x", r);
  EXPECT_EQ(t2.easy, r.easy);
  EXPECT_EQ(t2.hard, r.hard);
  const Table3Row t3 = to_table3("x", r);
  EXPECT_EQ(t3.s2_det, r.s2_detected);
  EXPECT_EQ(t3.s3_undetected, r.s3_undetected);
}

TEST(Pipeline, MultiChainCircuit) {
  RandomCircuitSpec spec;
  spec.num_gates = 260;
  spec.num_ffs = 20;
  spec.seed = 404;
  TpiOptions topt;
  topt.num_chains = 2;
  Built b(make_random_sequential(spec), topt);
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults);
  EXPECT_GT(r.affecting(), 0u);
  EXPECT_LE(r.final_undetected() * 10, r.affecting());
}

}  // namespace
}  // namespace fsct
