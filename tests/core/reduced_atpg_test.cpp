#include "core/reduced_atpg.h"

#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "core/classify.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

struct Built {
  ExampleDesign e;
  Levelizer lv;
  ScanModeModel model;
  ReducedCircuitBuilder builder;
  explicit Built(ExampleDesign ed)
      : e(std::move(ed)), lv(e.nl), model(lv, e.design), builder(model) {}
};

AtpgGroup window_group(std::size_t idx, int chain, int lo, int hi) {
  AtpgGroup g;
  g.kind = 1;
  g.fault_indices = {idx};
  g.window = {{chain, lo, hi}};
  return g;
}

TEST(ReducedAtpg, FramesForWindow) {
  Built b(paper_figure2());
  AtpgGroup g = window_group(0, 0, 2, 5);
  EXPECT_EQ(b.builder.frames_for(g), 3 + 4);  // spread 3 + slack 4
  EXPECT_EQ(b.builder.frames_for(g, 8), 15);
  ReducedModelOptions opt;
  opt.frame_cap = 5;
  ReducedCircuitBuilder capped(b.model, opt);
  EXPECT_EQ(capped.frames_for(g), 5);
}

TEST(ReducedAtpg, BuildsPrunedModel) {
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const AtpgGroup g = window_group(0, 0, 5, 5);
  const ReducedModel rm = b.builder.build(g, std::span(&f, 1));
  EXPECT_EQ(rm.um.nl.validate(), "");
  EXPECT_GT(rm.um.observe.size(), 0u);
  // The controllable prefix f1..f5 gives five controllable state inputs.
  int controllable_states = 0;
  for (std::size_t i = 0; i < rm.um.init_state.size(); ++i) {
    if (rm.um.init_state[i] != kNullNode &&
        rm.um.controllable[rm.um.init_state[i]]) {
      ++controllable_states;
    }
  }
  EXPECT_EQ(controllable_states, 5);
}

TEST(ReducedAtpg, DetectsTheFigure2Fault) {
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const AtpgGroup g = window_group(0, 0, 5, 5);
  const ReducedModel rm = b.builder.build(g, std::span(&f, 1));
  const auto sites = rm.um.map_fault(f);
  ASSERT_FALSE(sites.empty());
  const AtpgResult r = rm.podem->generate(sites);
  EXPECT_EQ(r.status, AtpgStatus::Detected);
}

TEST(ReducedAtpg, ExtractedTestVerifiesEndToEnd) {
  Built b(paper_figure2());
  const Fault f = paper_figure2_fault(b.e.nl);
  const AtpgGroup g = window_group(0, 0, 5, 5);
  const ReducedModel rm = b.builder.build(g, std::span(&f, 1));
  const AtpgResult r = rm.podem->generate(rm.um.map_fault(f));
  ASSERT_EQ(r.status, AtpgStatus::Detected);

  const SeqTest t = b.builder.extract_test(rm, r);
  const TestSequence seq = b.builder.realize(t, 8);
  std::vector<NodeId> observe = b.e.nl.outputs();
  SeqFaultSim sim(b.lv, observe);
  const Fault faults[] = {f};
  const auto sr = sim.run_serial(seq, faults);
  EXPECT_GE(sr.detect_cycle[0], 0)
      << "sequential ATPG test must really detect the fault";
}

TEST(ReducedAtpg, ChainStuckFaultAlsoDetectable) {
  Built b(paper_figure2());
  const Fault f{b.e.nl.find("a"), -1, true};  // category-1 style
  const AtpgGroup g = window_group(0, 0, 5, 5);
  const ReducedModel rm = b.builder.build(g, std::span(&f, 1));
  const AtpgResult r = rm.podem->generate(rm.um.map_fault(f));
  EXPECT_EQ(r.status, AtpgStatus::Detected);
}

TEST(ReducedAtpg, WindowFromClassifier) {
  Built b(paper_figure3());
  ChainFaultClassifier cls(b.model);
  const Fault f = paper_figure3_fault(b.e.nl);
  const ChainFaultInfo info = cls.classify(f);
  const FaultWindow w = make_fault_window(0, info);
  AtpgGroup g;
  g.kind = 1;
  g.fault_indices = {0};
  g.window = w.chains;
  const ReducedModel rm = b.builder.build(g, std::span(&f, 1));
  const AtpgResult r = rm.podem->generate(rm.um.map_fault(f));
  ASSERT_EQ(r.status, AtpgStatus::Detected);

  const SeqTest t = b.builder.extract_test(rm, r);
  const TestSequence seq = b.builder.realize(t, 8);
  SeqFaultSim sim(b.lv, b.e.nl.outputs());
  const Fault faults[] = {f};
  EXPECT_GE(sim.run_serial(seq, faults).detect_cycle[0], 0);
}

TEST(ReducedAtpg, RealizeUsesLoadThenFramesThenFlush) {
  Built b(paper_figure2());
  SeqTest t;
  t.init_state.assign(b.e.nl.dffs().size(), Val::X);
  t.init_state[0] = k1;
  t.pi_frames.assign(2, std::vector<Val>(b.e.nl.inputs().size(), Val::X));
  const TestSequence seq = b.builder.realize(t, 3);
  // load (6 = chain length) + 2 frames + 3 flush.
  EXPECT_EQ(seq.size(), 6u + 2u + 3u);
  // Every cycle keeps the scan-mode constraints.
  for (const auto& v : seq) {
    for (std::size_t i = 0; i < b.e.nl.inputs().size(); ++i) {
      if (b.e.nl.inputs()[i] == b.e.design.scan_mode) EXPECT_EQ(v[i], k1);
      if (b.e.nl.inputs()[i] == b.e.nl.find("en")) EXPECT_EQ(v[i], k1);
    }
  }
}

}  // namespace
}  // namespace fsct
