// Unit tests for the work-stealing thread pool: full index coverage with
// per-index result slots (the determinism contract), exception propagation
// (lowest failing chunk wins), nested submission from inside tasks, and the
// serial degenerate case.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace fsct {
namespace {

TEST(Parallel, ResolveJobs) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(4), 4u);
  EXPECT_GE(resolve_jobs(-3), 1u);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 4, 7}) {
    ThreadPool pool(jobs);
    const std::size_t n = 10'000;
    std::vector<int> hits(n, 0);
    parallel_for(pool, n, 17, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " with jobs=" << jobs;
    }
  }
}

TEST(Parallel, ResultsIdenticalAtAnyJobCount) {
  auto compute = [](int jobs) {
    ThreadPool pool(jobs);
    std::vector<std::uint64_t> out(5000);
    parallel_for(pool, out.size(), 13, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = i * i + 1;
    });
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(4));
  EXPECT_EQ(serial, compute(16));
}

TEST(Parallel, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(pool, 0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<int> hits(3, 0);
  parallel_for(pool, 3, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(Parallel, ExceptionPropagatesLowestChunk) {
  for (int jobs : {1, 4}) {
    ThreadPool pool(jobs);
    try {
      parallel_for(pool, 1000, 10, [&](std::size_t b, std::size_t) {
        if (b == 250 || b == 770) {
          throw std::runtime_error("chunk " + std::to_string(b));
        }
      });
      FAIL() << "expected a throw with jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 250");
    }
  }
}

TEST(Parallel, ExceptionDoesNotAbandonOtherChunks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 100, 1,
                            [&](std::size_t b, std::size_t) {
                              ran.fetch_add(1);
                              if (b == 0) throw std::logic_error("boom");
                            }),
               std::logic_error);
  // Every chunk is still claimed and executed; only the error is remembered.
  EXPECT_EQ(ran.load(), 100);
}

TEST(Parallel, NestedParallelFor) {
  ThreadPool pool(4);
  const std::size_t rows = 40, cols = 60;
  std::vector<std::vector<int>> grid(rows, std::vector<int>(cols, 0));
  parallel_for(pool, rows, 1, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      parallel_for(pool, cols, 8, [&, r](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          grid[r][c] = static_cast<int>(r * cols + c);
        }
      });
    }
  });
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(grid[r][c], static_cast<int>(r * cols + c));
    }
  }
}

TEST(Parallel, SubmitRunsEverything) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  // submit() has no join primitive of its own; drive completion through a
  // parallel_for barrier that the submitted tasks feed.
  parallel_for(pool, 64, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), (63 * 64) / 2);

  // Nested submission: tasks spawned from inside pool tasks must also run.
  std::atomic<int> nested{0};
  parallel_for(pool, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.submit([&nested] { nested.fetch_add(1); });
    }
  });
  // The submitted increments have no completion handle; a fresh barrier
  // cannot start until workers drain their deques... so poll with a bound.
  for (int spin = 0; spin < 10'000 && nested.load() < 8; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(nested.load(), 8);
}

TEST(Parallel, SerialPoolRunsSubmitInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // no workers: must have executed synchronously
}

TEST(Parallel, GrainHeuristicBounds) {
  EXPECT_EQ(parallel_grain(0, 4), 1u);
  EXPECT_GE(parallel_grain(100, 4, 64), 64u);
  // Enough chunks per executor for load balancing.
  const std::size_t g = parallel_grain(100'000, 8);
  EXPECT_GE(100'000 / g, 8u * 2);
}

}  // namespace
}  // namespace fsct
