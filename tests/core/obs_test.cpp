#include "core/obs.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "bench_circuits/paper_examples.h"
#include "bench_circuits/suite.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct Built {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  explicit Built(Netlist n)
      : nl(std::move(n)),
        design(run_tpi(nl)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
  Built(ExampleDesign e)
      : nl(std::move(e.nl)),
        design(std::move(e.design)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
};

PipelineResult run_with(ObsRegistry* obs, int jobs, Built& b) {
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = jobs;
  opt.obs = obs;
  // No random-pattern warm-up: every hard fault goes through PODEM, so the
  // ATPG counters are exercised even on tiny circuits.
  opt.random_patterns = 0;
  return run_fsct_pipeline(b.model, b.faults, opt);
}

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pat); pos != std::string::npos;
       pos = hay.find(pat, pos + pat.size())) {
    ++n;
  }
  return n;
}

// Minimal structural JSON check: quotes paired, braces/brackets balanced and
// properly nested outside strings.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (esc) { esc = false; continue; }
    if (in_str) {
      if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_str && stack.empty();
}

TEST(Obs, CountersMergeExactSumsAcrossExecutors) {
  ObsRegistry reg;
  ThreadPool pool(4);
  const std::size_t n = 10000;
  parallel_for(pool, n, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      reg.add(Ctr::PpsfpEvents);
      reg.add(Ctr::PodemDecisions, 3);
      reg.observe(Hist::PodemDecisionDepth, i % 37);
    }
  });
  EXPECT_EQ(reg.total(Ctr::PpsfpEvents), n);
  EXPECT_EQ(reg.total(Ctr::PodemDecisions), 3 * n);
  EXPECT_EQ(reg.total(Ctr::PodemBacktracks), 0u);
  std::uint64_t hist_sum = 0;
  for (std::uint64_t c : reg.hist_total(Hist::PodemDecisionDepth)) {
    hist_sum += c;
  }
  EXPECT_EQ(hist_sum, n);
}

TEST(Obs, LogBucketScheme) {
  EXPECT_EQ(ObsRegistry::bucket(0), 0u);
  EXPECT_EQ(ObsRegistry::bucket(1), 1u);
  EXPECT_EQ(ObsRegistry::bucket(2), 2u);
  EXPECT_EQ(ObsRegistry::bucket(3), 2u);
  EXPECT_EQ(ObsRegistry::bucket(4), 3u);
  EXPECT_EQ(ObsRegistry::bucket(7), 3u);
  EXPECT_EQ(ObsRegistry::bucket(8), 4u);
  // The tail clamps into the last bucket.
  EXPECT_EQ(ObsRegistry::bucket(~0ull), kHistBuckets - 1);
}

TEST(Obs, PipelineCountersIdenticalAcrossJobCounts) {
  Built b1(small_pipeline());
  Built b4(small_pipeline());
  ObsRegistry r1, r4;
  const PipelineResult p1 = run_with(&r1, 1, b1);
  const PipelineResult p4 = run_with(&r4, 4, b4);
  ASSERT_EQ(p1.total_faults, p4.total_faults);
  // The deterministic slice is bitwise identical, as one string compare.
  EXPECT_EQ(r1.counters_json(), r4.counters_json());
  // And it actually observed the run.
  EXPECT_EQ(r1.total(Ctr::ClassifyFaults), p1.total_faults);
  EXPECT_GT(r1.total(Ctr::ClassifyEvents), 0u);
  // Flush credit may satisfy every hard fault before PODEM runs on this
  // small circuit; either way step 2 must have been observed.
  EXPECT_GT(r1.total(Ctr::PodemCalls) + r1.total(Ctr::FlushCreditDetected),
            0u);
  EXPECT_GT(r1.total(Ctr::SeqSimCycles), 0u);
}

TEST(Obs, TraceJsonBalancedAndWellFormed) {
  Built b(small_pipeline());
  ObsRegistry reg;
  reg.enable_trace();
  run_with(&reg, 2, b);
  EXPECT_GT(reg.trace_event_count(), 0u);
  std::ostringstream os;
  reg.write_trace(os);
  const std::string t = os.str();
  EXPECT_TRUE(json_well_formed(t)) << t.substr(0, 400);
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  const std::size_t begins = count_occurrences(t, "\"ph\": \"B\"");
  const std::size_t ends = count_occurrences(t, "\"ph\": \"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, reg.trace_event_count());
  // Named tracks: the submitting thread plus at least one worker.
  EXPECT_NE(t.find("executor 0 (caller)"), std::string::npos);
}

TEST(Obs, DisabledSinkRecordsNothing) {
  Built b(small_pipeline());
  ObsRegistry reg;  // never handed to the pipeline
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = 2;
  run_fsct_pipeline(b.model, b.faults, opt);
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    EXPECT_EQ(reg.total(static_cast<Ctr>(c)), 0u) << counter_name(static_cast<Ctr>(c));
  }
  EXPECT_EQ(reg.trace_event_count(), 0u);
  // Spans against a null registry are inert too.
  { const ObsSpan s(nullptr, "noop"); }
  // Spans with tracing off record nothing.
  { const ObsSpan s(&reg, "off"); }
  EXPECT_EQ(reg.trace_event_count(), 0u);
}

TEST(Obs, RunReportCoversResultCountersAndPool) {
  Built b(small_pipeline());
  ObsRegistry reg;
  const PipelineResult r = run_with(&reg, 2, b);
  std::ostringstream os;
  reg.write_run_report(os, r);
  const std::string rep = os.str();
  EXPECT_TRUE(json_well_formed(rep)) << rep.substr(0, 400);
  for (const char* key :
       {"fsct-run-report-v2", "total_faults", "easy_verified", "s2_detected",
        "detection_curve", "outcomes", "podem_backtracks",
        "podem_decision_depth", "histograms", "gauges",
        "hardware_concurrency", "pool", "workers", "idle_seconds"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
  // Attribution was not requested: the section says so and carries no rows.
  EXPECT_NE(rep.find("\"attribution\": {\"enabled\": false}"),
            std::string::npos);
}

// Runs the pipeline with the attribution ledger on and returns the
// deterministic attribution table as JSON.  ATPG wall budgets are disabled:
// wall truncation is the one schedule-dependent source of attributed PODEM
// work, and these tests assert bitwise equality.
std::string attr_run(Built& b, int jobs, int width, ObsRegistry* out = nullptr,
                     PipelineResult* res = nullptr) {
  ObsRegistry local;
  ObsRegistry& reg = out ? *out : local;
  reg.request_attribution();
  PipelineOptions opt;
  opt.jobs = jobs;
  opt.simd_width = width;
  opt.obs = &reg;
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  const PipelineResult r = run_fsct_pipeline(b.model, b.faults, opt);
  if (res) *res = r;
  return reg.attribution_json();
}

TEST(Obs, AttributionChargeMergesAcrossExecutors) {
  ObsRegistry reg;
  reg.request_attribution();
  reg.init_attribution(100);
  ASSERT_TRUE(reg.attribution_enabled());
  ThreadPool pool(4);
  const std::size_t n = 10000;
  parallel_for(pool, n, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      reg.charge(Attr::SeqCycles, i % 100, 2);
      reg.charge(Attr::PodemDecisions, i % 100);
    }
  });
  for (std::size_t f = 0; f < 100; ++f) {
    EXPECT_EQ(reg.attr_total(Attr::SeqCycles, f), 200u) << f;
    EXPECT_EQ(reg.attr_total(Attr::PodemDecisions, f), 100u) << f;
    EXPECT_EQ(reg.attr_total(Attr::PodemBacktracks, f), 0u) << f;
  }
  EXPECT_EQ(reg.attribution_table().size(), 100 * kNumDetAttrs);
}

TEST(Obs, AttributionDisabledIsInert) {
  ObsRegistry reg;
  EXPECT_FALSE(reg.attribution_enabled());
  // Charges against a disabled ledger are dropped at the fast-path branch.
  reg.charge(Attr::SeqCycles, 3, 100);
  EXPECT_EQ(reg.attribution_faults(), 0u);
  EXPECT_TRUE(reg.attribution_table().empty());
}

TEST(Obs, AttributionIdenticalAcrossJobCounts) {
  for (const char* name : {"s1488", "s1494", "s1423"}) {
    Built b(build_suite_circuit(suite_entry(name)));
    const std::string serial = attr_run(b, 1, 0);
    const std::string parallel = attr_run(b, 4, 0);
    EXPECT_EQ(serial, parallel) << name;
    EXPECT_NE(serial.find("\"rows\""), std::string::npos) << name;
  }
}

TEST(Obs, AttributionIdenticalAcrossSimdWidths) {
  for (const char* name : {"s1488", "s1494", "s1423"}) {
    Built b(build_suite_circuit(suite_entry(name)));
    const std::string w64 = attr_run(b, 4, 64);
    EXPECT_EQ(w64, attr_run(b, 4, 256)) << name << " width 256";
    EXPECT_EQ(w64, attr_run(b, 4, 512)) << name << " width 512";
  }
}

TEST(Obs, AttributionReconcilesWithDeterministicCounters) {
  Built b(build_suite_circuit(suite_entry("s1488")));
  ObsRegistry reg;
  attr_run(b, 4, 0, &reg);
  const std::vector<std::uint64_t> t = reg.attribution_table();
  ASSERT_EQ(t.size(), b.faults.size() * kNumDetAttrs);
  std::array<std::uint64_t, kNumDetAttrs> sums{};
  for (std::size_t f = 0; f < b.faults.size(); ++f) {
    for (std::size_t a = 0; a < kNumDetAttrs; ++a) {
      sums[a] += t[f * kNumDetAttrs + a];
    }
  }
  const auto col = [&](Attr a) { return sums[static_cast<std::size_t>(a)]; };
  // Every PODEM call in the pipeline is attributed, and both the counters
  // and the ledger exclude wall-truncated work, so the columns reconcile
  // exactly with the deterministic counters.
  EXPECT_EQ(col(Attr::PodemCalls), reg.total(Ctr::PodemCalls));
  EXPECT_EQ(col(Attr::PodemDecisions), reg.total(Ctr::PodemDecisions));
  EXPECT_EQ(col(Attr::PodemBacktracks), reg.total(Ctr::PodemBacktracks));
  // Detection credit is charged at every credit site: the total matches the
  // flush-credited + ledger-dropped counts.
  EXPECT_EQ(col(Attr::CreditEvents), reg.total(Ctr::FlushCreditDetected) +
                                         reg.total(Ctr::DroppedByLedger));
  EXPECT_GT(col(Attr::SeqCycles), 0u);
  EXPECT_GT(col(Attr::SeqSims), 0u);
}

TEST(Obs, RunReportV2CarriesAttributionTopList) {
  Built b(small_pipeline());
  ObsRegistry reg;
  PipelineResult r;
  attr_run(b, 2, 0, &reg, &r);
  std::ostringstream os;
  reg.write_run_report(os, r);
  const std::string rep = os.str();
  EXPECT_TRUE(json_well_formed(rep)) << rep.substr(0, 400);
  EXPECT_NE(rep.find("\"attribution\": {\"enabled\": true"),
            std::string::npos);
  for (const char* key : {"\"columns\"", "\"top\"", "\"work\"", "seq_cycles",
                          "wall_nanos", "credit_events"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
}

TEST(Obs, TraceLimitDropsEventsAndMarksTruncation) {
  Built b(small_pipeline());
  ObsRegistry reg;
  reg.enable_trace();
  reg.set_trace_limit_bytes(512);  // a handful of spans at most
  run_with(&reg, 2, b);
  EXPECT_GT(reg.total(Ctr::TraceEventsDropped), 0u);
  bool marked = false;
  for (const auto& e : reg.trace_snapshot()) {
    if (e.name == "trace.truncated") marked = true;
  }
  EXPECT_TRUE(marked);
  // The capped buffer must still serialize as valid trace JSON.
  std::ostringstream os;
  reg.write_trace(os);
  EXPECT_TRUE(json_well_formed(os.str()));
}

TEST(Obs, OpenMetricsExpositionFormat) {
  Built b(small_pipeline());
  ObsRegistry reg;
  run_with(&reg, 2, b);
  std::ostringstream os;
  reg.write_openmetrics(os);
  const std::string m = os.str();
  EXPECT_NE(m.find("# TYPE fsct_classify_faults counter"), std::string::npos);
  EXPECT_NE(m.find("fsct_classify_faults_total "), std::string::npos);
  EXPECT_NE(m.find("# TYPE fsct_jobs gauge"), std::string::npos);
  EXPECT_NE(m.find("# TYPE fsct_podem_decision_depth histogram"),
            std::string::npos);
  EXPECT_NE(m.find("fsct_podem_decision_depth_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(m.find("fsct_podem_decision_depth_sum "), std::string::npos);
  EXPECT_NE(m.find("fsct_podem_decision_depth_count "), std::string::npos);
  // OpenMetrics requires the EOF marker as the final line.
  ASSERT_GE(m.size(), 6u);
  EXPECT_EQ(m.substr(m.size() - 6), "# EOF\n");
}

TEST(Obs, ProgressLinesDeliveredPerPhase) {
  Built b(small_pipeline());
  ObsRegistry reg;
  std::vector<std::string> lines;
  reg.progress = [&](const std::string& l) { lines.push_back(l); };
  run_with(&reg, 1, b);
  ASSERT_GE(lines.size(), 3u);  // classify, step1, step2, step3
  EXPECT_NE(lines.front().find("classify:"), std::string::npos);
  EXPECT_NE(lines.back().find("step3:"), std::string::npos);
}

#ifndef _WIN32
TEST(Obs, MonitorInstallsAndRestoresSigusr1Handler) {
  // Nothing in this binary pins the handler, so monitor lifetime alone
  // decides whether our sigaction is installed.
  ASSERT_FALSE(sigusr1_handler_active());
  {
    ObsMonitor m;
    EXPECT_TRUE(sigusr1_handler_active());
  }
  EXPECT_FALSE(sigusr1_handler_active());
  {
    ObsMonitor again;  // start/stop/start: the saved action round-trips
    EXPECT_TRUE(sigusr1_handler_active());
    {
      ObsMonitor nested;  // refcounted: the inner release must not uninstall
    }
    EXPECT_TRUE(sigusr1_handler_active());
  }
  EXPECT_FALSE(sigusr1_handler_active());

  ObsMonitor::Options opt;
  opt.sigusr1 = false;  // per-session serve monitors never touch the signal
  const ObsMonitor silent(opt);
  EXPECT_FALSE(sigusr1_handler_active());
}
#endif

TEST(Obs, HeartbeatRateEtaClampsWhenTotalShrinksBelowDone) {
  HeartbeatRate hr;
  const auto t0 = std::chrono::steady_clock::time_point{};
  static const char* const kPhase = "step3";
  // One sample is no rate: ETA unknown, not zero or garbage.
  EXPECT_EQ(hr.update(kPhase, 0, 100, t0).rate, 0);
  EXPECT_LT(hr.update(kPhase, 0, 100, t0).eta_seconds, 0);
  const auto e1 = hr.update(kPhase, 40, 100, t0 + std::chrono::seconds(4));
  EXPECT_NEAR(e1.rate, 10.0, 1e-9);
  EXPECT_NEAR(e1.eta_seconds, 6.0, 1e-9);
  // Ledger drops shrank the total below done mid-phase: the estimate must
  // clamp remaining work to zero, never wrap the unsigned subtraction.
  const auto e2 = hr.update(kPhase, 50, 30, t0 + std::chrono::seconds(5));
  EXPECT_GT(e2.rate, 0);
  EXPECT_EQ(e2.eta_seconds, 0);
}

TEST(Obs, HeartbeatRateResetsOnPhaseChangeAndDoneRegression) {
  HeartbeatRate hr;
  const auto t0 = std::chrono::steady_clock::time_point{};
  static const char* const kA = "stepA";
  static const char* const kB = "stepB";
  hr.update(kA, 0, 100, t0);
  EXPECT_GT(hr.update(kA, 50, 100, t0 + std::chrono::seconds(1)).rate, 0);
  // New phase literal: the old window must not poison the new rate.
  EXPECT_EQ(hr.update(kB, 10, 100, t0 + std::chrono::seconds(2)).rate, 0);
  EXPECT_GT(hr.update(kB, 20, 100, t0 + std::chrono::seconds(3)).rate, 0);
  // A daemon's next run reuses the same literal; done regressing to the
  // fresh run's small count must also reset the window.
  EXPECT_EQ(hr.update(kB, 5, 100, t0 + std::chrono::seconds(4)).rate, 0);
}

// hist_quantile() is how `fsct stat` turns scraped latency buckets into
// p50/p90/p99, so its edge behavior is contract, not detail.
TEST(Obs, HistQuantileEdges) {
  std::array<std::uint64_t, kHistBuckets> b{};
  // Empty histogram: no quantile to report.
  EXPECT_EQ(hist_quantile(b, 0.5), -1.0);

  // All mass on value 0 (bucket 0): every quantile is exactly 0.
  b[0] = 17;
  EXPECT_EQ(hist_quantile(b, 0.0), 0.0);
  EXPECT_EQ(hist_quantile(b, 0.5), 0.0);
  EXPECT_EQ(hist_quantile(b, 1.0), 0.0);
  b[0] = 0;

  // Single interior bucket 3 = [4, 7], four samples: ranks interpolate
  // linearly across the bucket's width, and q outside [0,1] clamps.
  b[3] = 4;
  EXPECT_DOUBLE_EQ(hist_quantile(b, 0.0), 4.75);   // rank 0 maps to rank 1
  EXPECT_DOUBLE_EQ(hist_quantile(b, 0.5), 5.5);    // rank 2 of 4
  EXPECT_DOUBLE_EQ(hist_quantile(b, 1.0), 7.0);    // rank 4: bucket's top
  EXPECT_DOUBLE_EQ(hist_quantile(b, 2.0), 7.0);    // clamped to q = 1
  EXPECT_DOUBLE_EQ(hist_quantile(b, -1.0), 4.75);  // clamped to q = 0
  b[3] = 0;

  // Overflow tail: the last bucket has no upper edge, so a quantile landing
  // there reports the bucket's lower bound — a floor, never an invention.
  b[kHistBuckets - 1] = 3;
  const double tail_lo =
      static_cast<double>(std::uint64_t{1} << (kHistBuckets - 2));
  EXPECT_DOUBLE_EQ(hist_quantile(b, 0.5), tail_lo);
  EXPECT_DOUBLE_EQ(hist_quantile(b, 1.0), tail_lo);
  b[kHistBuckets - 1] = 0;

  // Mass split across buckets: the rank walk crosses cumulative counts.
  b[0] = 1;  // one sample of value 0
  b[1] = 1;  // one sample of value 1
  EXPECT_DOUBLE_EQ(hist_quantile(b, 0.5), 0.0);  // rank 1 is the zero
  EXPECT_DOUBLE_EQ(hist_quantile(b, 1.0), 1.0);  // rank 2 is the one
}

// merge_from is the daemon's fold of a finished session registry into its
// lifetime registry: counters and histogram mass accumulate exactly, gauges
// (set-once run facts) stay untouched.
TEST(Obs, MergeFromAccumulatesCountersAndHistsNotGauges) {
  ObsRegistry session;
  session.add(Ctr::PpsfpEvents, 5);
  session.add(Ctr::PodemCalls, 2);
  session.observe(Hist::PodemDecisionDepth, 0);
  session.observe(Hist::PodemDecisionDepth, 6);
  session.set_gauge(Gauge::Jobs, 8);

  ObsRegistry daemon;
  daemon.set_gauge(Gauge::Jobs, 1);
  daemon.merge_from(session);
  daemon.merge_from(session);  // two identical sessions
  EXPECT_EQ(daemon.total(Ctr::PpsfpEvents), 10u);
  EXPECT_EQ(daemon.total(Ctr::PodemCalls), 4u);
  const auto b = daemon.hist_total(Hist::PodemDecisionDepth);
  EXPECT_EQ(b[0], 2u);                       // two zeros
  EXPECT_EQ(b[ObsRegistry::bucket(6)], 2u);  // two sixes
  EXPECT_EQ(daemon.hist_sum(Hist::PodemDecisionDepth), 12u);
  EXPECT_EQ(daemon.gauge(Gauge::Jobs), 1);  // not merged
}

}  // namespace
}  // namespace fsct
