#include "core/obs.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

struct Built {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  std::vector<Fault> faults;
  explicit Built(Netlist n)
      : nl(std::move(n)),
        design(run_tpi(nl)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
  Built(ExampleDesign e)
      : nl(std::move(e.nl)),
        design(std::move(e.design)),
        lv(nl),
        model(lv, design),
        faults(collapsed_fault_list(nl)) {}
};

PipelineResult run_with(ObsRegistry* obs, int jobs, Built& b) {
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = jobs;
  opt.obs = obs;
  // No random-pattern warm-up: every hard fault goes through PODEM, so the
  // ATPG counters are exercised even on tiny circuits.
  opt.random_patterns = 0;
  return run_fsct_pipeline(b.model, b.faults, opt);
}

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pat); pos != std::string::npos;
       pos = hay.find(pat, pos + pat.size())) {
    ++n;
  }
  return n;
}

// Minimal structural JSON check: quotes paired, braces/brackets balanced and
// properly nested outside strings.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (esc) { esc = false; continue; }
    if (in_str) {
      if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_str && stack.empty();
}

TEST(Obs, CountersMergeExactSumsAcrossExecutors) {
  ObsRegistry reg;
  ThreadPool pool(4);
  const std::size_t n = 10000;
  parallel_for(pool, n, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      reg.add(Ctr::PpsfpEvents);
      reg.add(Ctr::PodemDecisions, 3);
      reg.observe(Hist::PodemDecisionDepth, i % 37);
    }
  });
  EXPECT_EQ(reg.total(Ctr::PpsfpEvents), n);
  EXPECT_EQ(reg.total(Ctr::PodemDecisions), 3 * n);
  EXPECT_EQ(reg.total(Ctr::PodemBacktracks), 0u);
  std::uint64_t hist_sum = 0;
  for (std::uint64_t c : reg.hist_total(Hist::PodemDecisionDepth)) {
    hist_sum += c;
  }
  EXPECT_EQ(hist_sum, n);
}

TEST(Obs, LogBucketScheme) {
  EXPECT_EQ(ObsRegistry::bucket(0), 0u);
  EXPECT_EQ(ObsRegistry::bucket(1), 1u);
  EXPECT_EQ(ObsRegistry::bucket(2), 2u);
  EXPECT_EQ(ObsRegistry::bucket(3), 2u);
  EXPECT_EQ(ObsRegistry::bucket(4), 3u);
  EXPECT_EQ(ObsRegistry::bucket(7), 3u);
  EXPECT_EQ(ObsRegistry::bucket(8), 4u);
  // The tail clamps into the last bucket.
  EXPECT_EQ(ObsRegistry::bucket(~0ull), kHistBuckets - 1);
}

TEST(Obs, PipelineCountersIdenticalAcrossJobCounts) {
  Built b1(small_pipeline());
  Built b4(small_pipeline());
  ObsRegistry r1, r4;
  const PipelineResult p1 = run_with(&r1, 1, b1);
  const PipelineResult p4 = run_with(&r4, 4, b4);
  ASSERT_EQ(p1.total_faults, p4.total_faults);
  // The deterministic slice is bitwise identical, as one string compare.
  EXPECT_EQ(r1.counters_json(), r4.counters_json());
  // And it actually observed the run.
  EXPECT_EQ(r1.total(Ctr::ClassifyFaults), p1.total_faults);
  EXPECT_GT(r1.total(Ctr::ClassifyEvents), 0u);
  // Flush credit may satisfy every hard fault before PODEM runs on this
  // small circuit; either way step 2 must have been observed.
  EXPECT_GT(r1.total(Ctr::PodemCalls) + r1.total(Ctr::FlushCreditDetected),
            0u);
  EXPECT_GT(r1.total(Ctr::SeqSimCycles), 0u);
}

TEST(Obs, TraceJsonBalancedAndWellFormed) {
  Built b(small_pipeline());
  ObsRegistry reg;
  reg.enable_trace();
  run_with(&reg, 2, b);
  EXPECT_GT(reg.trace_event_count(), 0u);
  std::ostringstream os;
  reg.write_trace(os);
  const std::string t = os.str();
  EXPECT_TRUE(json_well_formed(t)) << t.substr(0, 400);
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  const std::size_t begins = count_occurrences(t, "\"ph\": \"B\"");
  const std::size_t ends = count_occurrences(t, "\"ph\": \"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, reg.trace_event_count());
  // Named tracks: the submitting thread plus at least one worker.
  EXPECT_NE(t.find("executor 0 (caller)"), std::string::npos);
}

TEST(Obs, DisabledSinkRecordsNothing) {
  Built b(small_pipeline());
  ObsRegistry reg;  // never handed to the pipeline
  PipelineOptions opt;
  opt.verify_easy = true;
  opt.jobs = 2;
  run_fsct_pipeline(b.model, b.faults, opt);
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    EXPECT_EQ(reg.total(static_cast<Ctr>(c)), 0u) << counter_name(static_cast<Ctr>(c));
  }
  EXPECT_EQ(reg.trace_event_count(), 0u);
  // Spans against a null registry are inert too.
  { const ObsSpan s(nullptr, "noop"); }
  // Spans with tracing off record nothing.
  { const ObsSpan s(&reg, "off"); }
  EXPECT_EQ(reg.trace_event_count(), 0u);
}

TEST(Obs, RunReportCoversResultCountersAndPool) {
  Built b(small_pipeline());
  ObsRegistry reg;
  const PipelineResult r = run_with(&reg, 2, b);
  std::ostringstream os;
  reg.write_run_report(os, r);
  const std::string rep = os.str();
  EXPECT_TRUE(json_well_formed(rep)) << rep.substr(0, 400);
  for (const char* key :
       {"fsct-run-report-v1", "total_faults", "easy_verified", "s2_detected",
        "detection_curve", "outcomes", "podem_backtracks",
        "podem_decision_depth", "histograms", "gauges",
        "hardware_concurrency", "pool", "workers", "idle_seconds"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
}

TEST(Obs, ProgressLinesDeliveredPerPhase) {
  Built b(small_pipeline());
  ObsRegistry reg;
  std::vector<std::string> lines;
  reg.progress = [&](const std::string& l) { lines.push_back(l); };
  run_with(&reg, 1, b);
  ASSERT_GE(lines.size(), 3u);  // classify, step1, step2, step3
  EXPECT_NE(lines.front().find("classify:"), std::string::npos);
  EXPECT_NE(lines.back().find("step3:"), std::string::npos);
}

}  // namespace
}  // namespace fsct
