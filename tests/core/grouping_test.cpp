#include "core/grouping.h"

#include <gtest/gtest.h>

namespace fsct {
namespace {

FaultWindow fw(std::size_t idx, int chain, int lo, int hi) {
  FaultWindow w;
  w.fault_index = idx;
  w.chains = {{chain, lo, hi}};
  return w;
}

TEST(Grouping, DistanceParamsFromMaxsize) {
  // Small chains: floors kick in.
  DistanceParams p = DistanceParams::from_maxsize(10);
  EXPECT_EQ(p.large_dist, 50);
  EXPECT_EQ(p.med_dist, 25);
  EXPECT_EQ(p.dist, 20);
  // Long chains: fractions kick in.
  p = DistanceParams::from_maxsize(200);
  EXPECT_EQ(p.large_dist, 120);
  EXPECT_EQ(p.med_dist, 50);
  EXPECT_EQ(p.dist, 30);
}

TEST(Grouping, MakeFaultWindowMergesPerChain) {
  ChainFaultInfo info;
  info.locations = {{0, 2}, {0, 5}, {1, 3}};
  const FaultWindow w = make_fault_window(7, info);
  EXPECT_EQ(w.fault_index, 7u);
  ASSERT_EQ(w.chains.size(), 2u);
  EXPECT_EQ(w.chains[0].min_seg, 2);
  EXPECT_EQ(w.chains[0].max_seg, 5);
  EXPECT_TRUE(w.multi_chain());
  EXPECT_EQ(w.spread(), 3);
}

// The paper's Figure 4 example: 7 flip-flops, LARGE_DIST=4, MED_DIST=3,
// DIST=2.  With FFs numbered 1..7 and our 0-based capture locations,
// "between FFi and FFi+1" is location i.
TEST(Grouping, PaperFigure4Example) {
  DistanceParams p;
  p.large_dist = 4;
  p.med_dist = 3;
  p.dist = 2;
  std::vector<FaultWindow> faults = {
      fw(1, 0, 1, 5),  // fault1: FF1-FF2 and FF5-FF6 -> spread 4 -> group 1
      fw(2, 0, 2, 5),  // fault2: spread 3 -> group 2 seed
      fw(3, 0, 3, 4),  // fault3: inside fault2's window -> absorbed
      fw(4, 0, 2, 4),  // fault4: inside fault2's window -> absorbed
      fw(5, 0, 0, 0),  // fault5 \  clustered: window [0,1] <= DIST
      fw(6, 0, 1, 1),  // fault6 /  (outside fault2's window)
      fw(7, 0, 6, 6),  // fault7 \  clustered: window [6,6]
      fw(8, 0, 6, 6),  // fault8 /
  };
  const auto groups = make_groups(faults, p);
  ASSERT_EQ(groups.size(), 4u);

  EXPECT_EQ(groups[0].kind, 1);
  EXPECT_EQ(groups[0].fault_indices, (std::vector<std::size_t>{1}));
  EXPECT_EQ(groups[0].window.front().min_seg, 1);
  EXPECT_EQ(groups[0].window.front().max_seg, 5);

  EXPECT_EQ(groups[1].kind, 2);
  EXPECT_EQ(groups[1].fault_indices, (std::vector<std::size_t>{2, 3, 4}));

  EXPECT_EQ(groups[2].kind, 3);
  EXPECT_EQ(groups[2].fault_indices, (std::vector<std::size_t>{5, 6}));
  EXPECT_EQ(groups[2].window.front().min_seg, 0);
  EXPECT_EQ(groups[2].window.front().max_seg, 1);

  EXPECT_EQ(groups[3].kind, 3);
  EXPECT_EQ(groups[3].fault_indices, (std::vector<std::size_t>{7, 8}));
}

TEST(Grouping, MultiChainFaultsGoToGroup1) {
  DistanceParams p;
  FaultWindow w;
  w.fault_index = 0;
  w.chains = {{0, 1, 1}, {1, 4, 4}};
  const auto groups = make_groups({w}, p);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].kind, 1);
  EXPECT_EQ(groups[0].window.size(), 2u);
}

TEST(Grouping, Group3ClustersPerChain) {
  DistanceParams p;
  p.dist = 5;
  p.med_dist = 100;
  p.large_dist = 200;
  std::vector<FaultWindow> faults = {
      fw(0, 0, 1, 1), fw(1, 0, 3, 3),   // chain 0 cluster
      fw(2, 1, 1, 1), fw(3, 1, 2, 2),   // chain 1 cluster (no mixing!)
  };
  const auto groups = make_groups(faults, p);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].window.front().chain, 0);
  EXPECT_EQ(groups[1].window.front().chain, 1);
}

TEST(Grouping, Group3SplitsWhenSpanExceedsDist) {
  DistanceParams p;
  p.dist = 2;
  p.med_dist = 100;
  p.large_dist = 200;
  std::vector<FaultWindow> faults = {
      fw(0, 0, 0, 0), fw(1, 0, 1, 1), fw(2, 0, 2, 2),
      fw(3, 0, 3, 3), fw(4, 0, 4, 4),
  };
  const auto groups = make_groups(faults, p);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].fault_indices.size(), 3u);  // 0,1,2 (span 2)
  EXPECT_EQ(groups[1].fault_indices.size(), 2u);  // 3,4
}

TEST(Grouping, EveryFaultAppearsExactlyOnce) {
  DistanceParams p;
  p.large_dist = 8;
  p.med_dist = 4;
  p.dist = 3;
  std::vector<FaultWindow> faults;
  for (std::size_t i = 0; i < 40; ++i) {
    const int lo = static_cast<int>(i % 13);
    const int hi = lo + static_cast<int>(i % 7);
    faults.push_back(fw(i, static_cast<int>(i % 2), lo, hi));
  }
  const auto groups = make_groups(faults, p);
  std::vector<std::size_t> seen;
  for (const auto& g : groups) {
    for (std::size_t fi : g.fault_indices) seen.push_back(fi);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Grouping, EmptyInputYieldsNoGroups) {
  EXPECT_TRUE(make_groups({}, DistanceParams{}).empty());
}

}  // namespace
}  // namespace fsct
