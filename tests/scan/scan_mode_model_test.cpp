#include "scan/scan_mode_model.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;
constexpr Val kX = Val::X;

TEST(ScanModeModel, Figure2ValuesAndLocations) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.check(), "");
  // Scan-mode values: en=1, en_n=0, b=AND(f1,0)=0; chain nets X.
  EXPECT_EQ(m.values()[e.nl.find("en")], k1);
  EXPECT_EQ(m.values()[e.nl.find("en_n")], k0);
  EXPECT_EQ(m.values()[e.nl.find("b")], k0);
  EXPECT_EQ(m.values()[e.nl.find("a")], kX);
  EXPECT_EQ(m.values()[e.nl.find("d6")], kX);

  // Chain locations: the f5->f6 path gates sit at segment 5.
  auto loc_a = m.chain_location(e.nl.find("a"));
  ASSERT_TRUE(loc_a.has_value());
  EXPECT_EQ(loc_a->chain, 0);
  EXPECT_EQ(loc_a->segment, 5);
  // f1's Q corrupts capture into f2 (segment 1).
  auto loc_f1 = m.chain_location(e.nl.find("f1"));
  ASSERT_TRUE(loc_f1.has_value());
  EXPECT_EQ(loc_f1->segment, 1);
  // Last flip-flop's Q is "the scan-out" = segment len.
  auto loc_f6 = m.chain_location(e.nl.find("f6"));
  ASSERT_TRUE(loc_f6.has_value());
  EXPECT_EQ(loc_f6->segment, 6);
  // Non-chain nets have no location.
  EXPECT_FALSE(m.chain_location(e.nl.find("en")).has_value());
}

TEST(ScanModeModel, Figure2SideAttachments) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  // en is the side input of AND 'a'; b is the side of OR 'd6'.
  const auto& en_sides = m.side_attachments(e.nl.find("en"));
  ASSERT_EQ(en_sides.size(), 1u);
  EXPECT_EQ(en_sides[0].loc.segment, 5);
  EXPECT_EQ(en_sides[0].gate_type, GateType::And);
  const auto& b_sides = m.side_attachments(e.nl.find("b"));
  ASSERT_EQ(b_sides.size(), 1u);
  EXPECT_EQ(b_sides[0].gate_type, GateType::Or);
  // X-valued nets are never recorded as sides.
  EXPECT_TRUE(m.side_attachments(e.nl.find("f1")).empty());
}

TEST(ScanModeModel, MaxChainLengthAndScanOuts) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.max_chain_length(), 6u);
  ASSERT_EQ(m.scan_outs().size(), 1u);
  EXPECT_EQ(m.scan_outs()[0], e.nl.find("f6"));
}

TEST(ScanModeModel, TpiDesignsSatisfyInvariant) {
  for (std::uint64_t seed : {10ull, 20ull, 30ull}) {
    RandomCircuitSpec spec;
    spec.num_gates = 250;
    spec.num_ffs = 20;
    spec.seed = seed;
    Netlist nl = make_random_sequential(spec);
    const ScanDesign d = run_tpi(nl);
    const Levelizer lv(nl);
    const ScanModeModel m(lv, d);
    EXPECT_EQ(m.check(), "") << "seed " << seed;
    // Every chain net is X (carries data).
    for (const ScanChain& c : d.chains) {
      for (const ScanSegment& s : c.segments) {
        for (NodeId g : s.path) {
          EXPECT_EQ(m.values()[g], kX) << nl.node_name(g);
        }
      }
    }
  }
}

TEST(ScanModeModel, MuxSegmentsRecordScanModeAsSide) {
  Netlist nl = small_counter();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel m(lv, d);
  // Find a dedicated mux segment; its select (scan_mode) must be a side.
  bool found_mux = false;
  for (const ScanChain& c : d.chains) {
    for (const ScanSegment& s : c.segments) {
      if (!s.functional) {
        found_mux = true;
        const auto& sides = m.side_attachments(d.scan_mode);
        EXPECT_FALSE(sides.empty());
      }
    }
  }
  EXPECT_TRUE(found_mux);
}

TEST(ScanModeModel, SideNetListSortedUnique) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  const auto& sides = m.side_nets();
  EXPECT_TRUE(std::is_sorted(sides.begin(), sides.end()));
  EXPECT_EQ(std::adjacent_find(sides.begin(), sides.end()), sides.end());
  for (NodeId n : sides) {
    EXPECT_NE(m.values()[n], kX);
  }
}

}  // namespace
}  // namespace fsct
