#include "scan/scan_chain.h"

#include <gtest/gtest.h>

namespace fsct {
namespace {

ScanChain three_stage(bool inv0, bool inv1, bool inv2) {
  ScanChain c;
  c.scan_in = 0;
  c.ffs = {10, 11, 12};
  for (int k = 0; k < 3; ++k) {
    ScanSegment s;
    s.from = (k == 0) ? c.scan_in : c.ffs[static_cast<std::size_t>(k - 1)];
    s.to = c.ffs[static_cast<std::size_t>(k)];
    s.functional = true;
    c.segments.push_back(s);
  }
  c.segments[0].inverting = inv0;
  c.segments[1].inverting = inv1;
  c.segments[2].inverting = inv2;
  return c;
}

TEST(ScanChain, LengthAndScanOut) {
  const ScanChain c = three_stage(false, false, false);
  EXPECT_EQ(c.length(), 3u);
  EXPECT_EQ(c.scan_out(), 12u);
  ScanChain empty;
  EXPECT_EQ(empty.length(), 0u);
  EXPECT_EQ(empty.scan_out(), kNullNode);
}

TEST(ScanChain, ParityAccumulatesAlongSegments) {
  const ScanChain c = three_stage(true, false, true);
  EXPECT_TRUE(c.parity_to(0));    // one inversion
  EXPECT_TRUE(c.parity_to(1));    // still one
  EXPECT_FALSE(c.parity_to(2));   // two inversions cancel
}

TEST(ScanChain, ParityOfNonInvertingChainIsFalseEverywhere) {
  const ScanChain c = three_stage(false, false, false);
  for (std::size_t k = 0; k < c.length(); ++k) {
    EXPECT_FALSE(c.parity_to(k));
  }
}

TEST(ScanDesign, IsConstrainedChecksPinnedPis) {
  ScanDesign d;
  d.scan_mode = 5;
  d.pi_constraints = {{5, Val::One}, {7, Val::Zero}};
  EXPECT_TRUE(d.is_constrained(5));
  EXPECT_TRUE(d.is_constrained(7));
  EXPECT_FALSE(d.is_constrained(6));
}

TEST(ScanSegment, DefaultsAreDedicatedNonInverting) {
  const ScanSegment s;
  EXPECT_FALSE(s.functional);
  EXPECT_FALSE(s.inverting);
  EXPECT_TRUE(s.path.empty());
  EXPECT_EQ(s.from, kNullNode);
}

}  // namespace
}  // namespace fsct
