#include "scan/scan_sequences.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "netlist/levelize.h"
#include "scan/tpi.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

TEST(ScanSequences, BaseVectorHoldsConstraints) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  const auto v = sb.base_vector(k0);
  ASSERT_EQ(v.size(), e.nl.inputs().size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (e.nl.inputs()[i] == e.nl.find("en") ||
        e.nl.inputs()[i] == e.design.scan_mode) {
      EXPECT_EQ(v[i], k1);
    } else {
      EXPECT_EQ(v[i], k0);
    }
  }
}

TEST(ScanSequences, AlternatingPatternPeriodFour) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  const TestSequence seq = sb.alternating(8);
  ASSERT_EQ(seq.size(), 8u);
  std::size_t si = 0;
  for (std::size_t i = 0; i < e.nl.inputs().size(); ++i) {
    if (e.nl.inputs()[i] == e.nl.find("si")) si = i;
  }
  const Val want[] = {k0, k0, k1, k1, k0, k0, k1, k1};
  for (int t = 0; t < 8; ++t) EXPECT_EQ(seq[t][si], want[t]) << t;
}

TEST(ScanSequences, LoadStateReachesWantedState) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  const std::vector<std::vector<Val>> want = {{k1, k0, k1, k1, k0, k1}};
  const TestSequence seq = sb.load_state(want);
  EXPECT_EQ(seq.size(), 6u);
  const Levelizer lv(e.nl);
  SeqSim sim(lv);
  sim.reset(k0);
  for (const auto& v : seq) sim.step(v);
  for (std::size_t k = 0; k < 6; ++k) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < e.nl.dffs().size(); ++i) {
      if (e.nl.dffs()[i] == e.design.chains[0].ffs[k]) idx = i;
    }
    EXPECT_EQ(sim.state()[idx], want[0][k]) << "position " << k;
  }
}

TEST(ScanSequences, LoadStateOnTpiCircuitWithInversions) {
  // Random circuits produce inverting functional segments; the loader must
  // compensate parity.
  for (std::uint64_t seed : {3ull, 14ull, 15ull}) {
    RandomCircuitSpec spec;
    spec.num_gates = 220;
    spec.num_ffs = 18;
    spec.seed = seed;
    Netlist nl = make_random_sequential(spec);
    const ScanDesign d = run_tpi(nl);
    const ScanSequenceBuilder sb(nl, d);
    std::mt19937_64 rng(seed);
    std::vector<std::vector<Val>> want(d.chains.size());
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      want[c].resize(d.chains[c].length());
      for (auto& v : want[c]) v = (rng() & 1) ? k1 : k0;
    }
    const TestSequence seq = sb.load_state(want);
    const Levelizer lv(nl);
    SeqSim sim(lv);
    sim.reset(k0);
    for (const auto& v : seq) sim.step(v);
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      for (std::size_t k = 0; k < d.chains[c].length(); ++k) {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
          if (nl.dffs()[i] == d.chains[c].ffs[k]) idx = i;
        }
        ASSERT_EQ(sim.state()[idx], want[c][k])
            << "seed " << seed << " chain " << c << " pos " << k;
      }
    }
  }
}

TEST(ScanSequences, ApplyCombVectorLoadsThenFlushes) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  std::vector<Val> ff_state(e.nl.dffs().size(), k1);
  const TestSequence seq =
      sb.apply_comb_vector(ff_state, sb.base_vector(k0), 4);
  EXPECT_EQ(seq.size(), 6u + 4u);
}

TEST(ScanSequences, ChainPositionLookup) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  const auto [c, k] = sb.chain_position(e.nl.find("f3"));
  EXPECT_EQ(c, 0);
  EXPECT_EQ(k, 2);
  const auto [c2, k2] = sb.chain_position(e.nl.find("en"));
  EXPECT_EQ(c2, -1);
  EXPECT_EQ(k2, -1);
}

TEST(ScanSequences, LoadStateSizeValidation) {
  ExampleDesign e = paper_figure2();
  const ScanSequenceBuilder sb(e.nl, e.design);
  EXPECT_THROW(sb.load_state({}), std::invalid_argument);
  std::vector<std::vector<Val>> want = {{k1}};
  EXPECT_NO_THROW(sb.load_state(want));  // short state: rest is fill
}

TEST(ScanSequences, UnequalChainsAlignAtTheEnd) {
  // Two chains of different lengths: both must hold their wanted state after
  // max-length cycles.
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 15;
  spec.seed = 8;
  Netlist nl = make_random_sequential(spec);
  TpiOptions topt;
  topt.num_chains = 2;
  const ScanDesign d = run_tpi(nl, topt);
  ASSERT_EQ(d.chains.size(), 2u);
  const ScanSequenceBuilder sb(nl, d);
  std::vector<std::vector<Val>> want(2);
  std::mt19937_64 rng(4);
  for (std::size_t c = 0; c < 2; ++c) {
    want[c].resize(d.chains[c].length());
    for (auto& v : want[c]) v = (rng() & 1) ? k1 : k0;
  }
  const TestSequence seq = sb.load_state(want);
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  for (const auto& v : seq) sim.step(v);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t k = 0; k < d.chains[c].length(); ++k) {
      std::size_t idx = 0;
      for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
        if (nl.dffs()[i] == d.chains[c].ffs[k]) idx = i;
      }
      ASSERT_EQ(sim.state()[idx], want[c][k]) << "chain " << c << " pos " << k;
    }
  }
}

}  // namespace
}  // namespace fsct
