#include "scan/mux_scan.h"

#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "netlist/levelize.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

std::vector<Val> pi_vector(const Netlist& nl, const ScanDesign& d,
                           Val scan_mode, std::vector<std::pair<NodeId, Val>>
                                              extra = {}) {
  std::vector<Val> v(nl.inputs().size(), k0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.inputs()[i] == d.scan_mode) v[i] = scan_mode;
    for (auto [n, val] : extra) {
      if (nl.inputs()[i] == n) v[i] = val;
    }
  }
  return v;
}

TEST(MuxScan, InsertsOneMuxPerFlipFlop) {
  Netlist nl = small_counter();
  const std::size_t gates_before = nl.num_gates();
  const ScanDesign d = insert_mux_scan(nl);
  EXPECT_EQ(d.scan_muxes, 4);
  EXPECT_EQ(nl.num_gates(), gates_before + 4);
  ASSERT_EQ(d.chains.size(), 1u);
  EXPECT_EQ(d.chains[0].length(), 4u);
  EXPECT_EQ(nl.validate(), "");
}

TEST(MuxScan, ChainShiftsInScanMode) {
  Netlist nl = small_counter();
  const ScanDesign d = insert_mux_scan(nl);
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  const ScanChain& chain = d.chains[0];
  // Shift in 1,0,1,1 and check the state afterwards.
  const Val stream[] = {k1, k0, k1, k1};
  for (Val bit : stream) {
    sim.step(pi_vector(nl, d, k1, {{chain.scan_in, bit}}));
  }
  // After 4 shifts: first bit is deepest.
  std::vector<Val> got;
  for (NodeId ff : chain.ffs) {
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      if (nl.dffs()[i] == ff) got.push_back(sim.state()[i]);
    }
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], k1);  // last bit shifted in
  EXPECT_EQ(got[1], k1);
  EXPECT_EQ(got[2], k0);
  EXPECT_EQ(got[3], k1);  // first bit reached the end
}

TEST(MuxScan, NormalModeBehaviourUnchanged) {
  // Reference counter vs scanned counter with scan_mode=0 must match.
  Netlist ref = small_counter();
  Netlist scanned = small_counter();
  const ScanDesign d = insert_mux_scan(scanned);
  const Levelizer rlv(ref), slv(scanned);
  SeqSim rsim(rlv), ssim(slv);
  rsim.reset(k0);
  ssim.reset(k0);
  for (int t = 0; t < 20; ++t) {
    const Val en = (t % 3 == 0) ? k0 : k1;
    rsim.step(std::vector<Val>{en});
    ssim.step(pi_vector(scanned, d, k0, {{scanned.find("en"), en}}));
    for (std::size_t i = 0; i < ref.dffs().size(); ++i) {
      ASSERT_EQ(rsim.state()[i], ssim.state()[i]) << "cycle " << t;
    }
  }
}

TEST(MuxScan, MultipleChainsPartitionAllFlipFlops) {
  Netlist nl = small_counter();
  MuxScanOptions opt;
  opt.num_chains = 2;
  const ScanDesign d = insert_mux_scan(nl, opt);
  ASSERT_EQ(d.chains.size(), 2u);
  EXPECT_EQ(d.chains[0].length() + d.chains[1].length(), 4u);
  // Scan-outs marked as POs.
  for (const ScanChain& c : d.chains) {
    EXPECT_TRUE(nl.is_output(c.scan_out()));
  }
}

TEST(MuxScan, SegmentsAreDedicatedNonInverting) {
  Netlist nl = small_pipeline();
  const ScanDesign d = insert_mux_scan(nl);
  for (const ScanSegment& s : d.chains[0].segments) {
    EXPECT_FALSE(s.functional);
    EXPECT_FALSE(s.inverting);
    ASSERT_EQ(s.path.size(), 1u);
    EXPECT_EQ(nl.type(s.path[0]), GateType::Mux);
  }
}

TEST(MuxScan, RejectsBadChainCount) {
  Netlist nl = small_counter();
  MuxScanOptions opt;
  opt.num_chains = 0;
  EXPECT_THROW(insert_mux_scan(nl, opt), std::invalid_argument);
}

}  // namespace
}  // namespace fsct
