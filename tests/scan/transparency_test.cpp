#include "scan/transparency.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "scan/mux_scan.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Transparency, MuxScanIsTransparent) {
  const Netlist ref = small_counter();
  Netlist scanned = small_counter();
  const ScanDesign d = insert_mux_scan(scanned);
  const TransparencyResult r = check_dft_transparency(ref, scanned, d);
  EXPECT_TRUE(r.equivalent) << r.diagnosis;
  EXPECT_GT(r.cycles_checked, 0);
}

TEST(Transparency, TpiIsTransparent) {
  const Netlist ref = iscas_s27();
  Netlist scanned = iscas_s27();
  const ScanDesign d = run_tpi(scanned);
  const TransparencyResult r = check_dft_transparency(ref, scanned, d);
  EXPECT_TRUE(r.equivalent) << r.diagnosis;
}

class TransparencySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransparencySeeds, TpiTransparentOnRandomCircuits) {
  RandomCircuitSpec spec;
  spec.num_gates = 260;
  spec.num_ffs = 20;
  spec.num_pis = 8;
  spec.num_pos = 6;
  spec.seed = GetParam();
  const Netlist ref = make_random_sequential(spec);
  Netlist scanned = make_random_sequential(spec);
  const ScanDesign d = run_tpi(scanned);
  const TransparencyResult r = check_dft_transparency(ref, scanned, d);
  EXPECT_TRUE(r.equivalent) << r.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencySeeds,
                         ::testing::Values(600ull, 601ull, 602ull, 603ull));

TEST(Transparency, PartialScanTransparentToo) {
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 16;
  spec.seed = 604;
  const Netlist ref = make_random_sequential(spec);
  Netlist scanned = make_random_sequential(spec);
  TpiOptions topt;
  topt.scan_permille = 500;
  const ScanDesign d = run_tpi(scanned, topt);
  const TransparencyResult r = check_dft_transparency(ref, scanned, d);
  EXPECT_TRUE(r.equivalent) << r.diagnosis;
}

TEST(Transparency, DetectsABrokenInsertion) {
  // Sabotage: swap a flip-flop's D with constant logic after TPI and make
  // sure the checker notices.
  const Netlist ref = small_pipeline();
  Netlist scanned = small_pipeline();
  const ScanDesign d = run_tpi(scanned);
  const NodeId f3 = scanned.find("f3");
  const NodeId k = scanned.add_const(true, "sabotage");
  scanned.set_fanin(f3, 0, k);
  const TransparencyResult r = check_dft_transparency(ref, scanned, d);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.diagnosis.find("f3"), std::string::npos);
}

TEST(Transparency, InterfaceMismatchThrows) {
  const Netlist ref = small_counter();
  Netlist other = small_pipeline();
  const ScanDesign d = run_tpi(other);
  EXPECT_THROW(check_dft_transparency(ref, other, d), std::invalid_argument);
}

}  // namespace
}  // namespace fsct
