// Partial functional scan (TpiOptions::scan_permille < 1000): only the
// cheapest-to-link flip-flops go on chains; the pipeline must treat the rest
// as uncontrollable/unobservable, exactly the "partial scan environment" the
// paper's section 4 mentions.
#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "core/pipeline.h"
#include "netlist/levelize.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

Netlist circuit(std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.num_gates = 260;
  spec.num_ffs = 20;
  spec.num_pis = 8;
  spec.num_pos = 6;
  spec.seed = seed;
  return make_random_sequential(spec);
}

TEST(PartialScan, ScansRoughlyTheRequestedFraction) {
  Netlist nl = circuit(61);
  TpiOptions opt;
  opt.scan_permille = 500;
  const ScanDesign d = run_tpi(nl, opt);
  std::size_t scanned = 0;
  for (const ScanChain& c : d.chains) scanned += c.length();
  EXPECT_EQ(scanned, 10u);  // ceil(20 * 0.5)
}

TEST(PartialScan, ZeroPermilleScansNothing) {
  Netlist nl = circuit(62);
  TpiOptions opt;
  opt.scan_permille = 0;
  const ScanDesign d = run_tpi(nl, opt);
  std::size_t scanned = 0;
  for (const ScanChain& c : d.chains) scanned += c.length();
  EXPECT_EQ(scanned, 0u);
}

TEST(PartialScan, UnscannedFlipFlopsKeepTheirLogic) {
  Netlist ref = circuit(63);
  Netlist nl = circuit(63);
  TpiOptions opt;
  opt.scan_permille = 400;
  const ScanDesign d = run_tpi(nl, opt);
  // Normal-mode behaviour unchanged vs the unscanned reference.
  const Levelizer rlv(ref), slv(nl);
  SeqSim rsim(rlv), ssim(slv);
  rsim.reset(k0);
  ssim.reset(k0);
  std::mt19937_64 rng(1);
  for (int t = 0; t < 15; ++t) {
    std::vector<Val> rv(ref.inputs().size());
    for (auto& x : rv) x = (rng() & 1) ? k1 : k0;
    std::vector<Val> sv(nl.inputs().size(), k0);
    for (std::size_t i = 0; i < rv.size(); ++i) sv[i] = rv[i];  // PIs first
    for (auto [pi, val] : d.pi_constraints) {
      // scan_mode / pinned PIs: scan_mode must be 0 in normal mode; pinned
      // mission PIs revert to free inputs, keep the random value.
      if (pi == d.scan_mode) {
        for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
          if (nl.inputs()[i] == pi) sv[i] = k0;
        }
      }
    }
    rsim.step(rv);
    ssim.step(sv);
    for (std::size_t i = 0; i < ref.dffs().size(); ++i) {
      ASSERT_EQ(rsim.state()[i], ssim.state()[i]) << "cycle " << t;
    }
  }
}

TEST(PartialScan, ShiftInvariantHoldsOnTheScannedSubset) {
  Netlist nl = circuit(64);
  TpiOptions opt;
  opt.scan_permille = 600;
  const ScanDesign d = run_tpi(nl, opt);
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  std::vector<int> ff_index(nl.size(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    ff_index[nl.dffs()[i]] = static_cast<int>(i);
  }
  const ScanSequenceBuilder sb(nl, d);
  std::mt19937_64 rng(7);
  for (int cycle = 0; cycle < 30; ++cycle) {
    std::vector<Val> v = sb.base_vector(k0);
    std::vector<Val> bits(d.chains.size());
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      bits[c] = (rng() & 1) ? k1 : k0;
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        if (nl.inputs()[i] == d.chains[c].scan_in) v[i] = bits[c];
      }
    }
    const std::vector<Val> before = sim.state();
    sim.step(v);
    for (std::size_t c = 0; c < d.chains.size(); ++c) {
      const ScanChain& chain = d.chains[c];
      for (std::size_t k = 0; k < chain.length(); ++k) {
        const Val prev =
            (k == 0) ? bits[c]
                     : before[static_cast<std::size_t>(
                           ff_index[chain.ffs[k - 1]])];
        const Val want = chain.segments[k].inverting ? !prev : prev;
        ASSERT_EQ(sim.state()[static_cast<std::size_t>(ff_index[chain.ffs[k]])],
                  want)
            << "chain " << c << " pos " << k;
      }
    }
  }
}

TEST(PartialScan, PipelineRunsAndAccountsCorrectly) {
  Netlist nl = circuit(65);
  TpiOptions opt;
  opt.scan_permille = 500;
  const ScanDesign d = run_tpi(nl, opt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions popt;
  popt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, popt);
  EXPECT_EQ(r.easy_verified, r.easy);
  EXPECT_EQ(r.hard, r.flush_detected + r.s2_detected + r.s2_undetectable +
                        r.s2_undetected);
  // A smaller chain is threatened by fewer faults than full scan.
  Netlist full_nl = circuit(65);
  const ScanDesign fd = run_tpi(full_nl);
  const Levelizer flv(full_nl);
  const ScanModeModel fmodel(flv, fd);
  const auto ffaults = collapsed_fault_list(full_nl);
  const PipelineResult fr = run_fsct_pipeline(fmodel, ffaults);
  EXPECT_LT(r.affecting(), fr.affecting());
}

TEST(PartialScan, CombAtpgNeverAssignsUnscannedState) {
  // The step-2 model must not pretend it can load unscanned flip-flops.
  Netlist nl = circuit(66);
  TpiOptions opt;
  opt.scan_permille = 300;
  const ScanDesign d = run_tpi(nl, opt);
  std::vector<char> on_chain(nl.size(), 0);
  for (const ScanChain& c : d.chains) {
    for (NodeId ff : c.ffs) on_chain[ff] = 1;
  }
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  const PipelineResult r = run_fsct_pipeline(model, faults);
  // Sequentially verified detections only: if the model had cheated by
  // assigning unscanned state, verification would fail and these counts
  // would collapse; demand a sane detected fraction instead.
  EXPECT_GE(r.s2_detected + r.s3_detected + r.s2_undetectable +
                r.s3_undetectable + r.easy,
            r.affecting() / 2);
}

}  // namespace
}  // namespace fsct
