#include "scan/tpi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "netlist/levelize.h"
#include "scan/mux_scan.h"
#include "sim/comb_sim.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

std::vector<Val> scan_pi_vector(const Netlist& nl, const ScanDesign& d,
                                const std::vector<std::pair<NodeId, Val>>&
                                    scan_ins = {}) {
  std::vector<Val> v(nl.inputs().size(), k0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    for (auto [pi, val] : d.pi_constraints) {
      if (nl.inputs()[i] == pi) v[i] = val;
    }
    for (auto [pi, val] : scan_ins) {
      if (nl.inputs()[i] == pi) v[i] = val;
    }
  }
  return v;
}

// The central invariant: in scan mode, after TPI, each chain behaves as a
// shift register (modulo recorded segment inversions).
void check_shift_invariant(Netlist& nl, const ScanDesign& d) {
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  std::vector<int> ff_index(nl.size(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    ff_index[nl.dffs()[i]] = static_cast<int>(i);
  }
  std::mt19937_64 rng(99);
  for (int cycle = 0; cycle < 40; ++cycle) {
    // Random scan-in bits per chain.
    std::vector<std::pair<NodeId, Val>> sin;
    std::vector<Val> bits;
    for (const ScanChain& c : d.chains) {
      const Val b = (rng() & 1) ? k1 : k0;
      sin.emplace_back(c.scan_in, b);
      bits.push_back(b);
    }
    const std::vector<Val> before = sim.state();
    sim.step(scan_pi_vector(nl, d, sin));
    const std::vector<Val>& after = sim.state();
    for (std::size_t ci = 0; ci < d.chains.size(); ++ci) {
      const ScanChain& chain = d.chains[ci];
      for (std::size_t k = 0; k < chain.length(); ++k) {
        const Val prev = (k == 0)
                             ? bits[ci]
                             : before[static_cast<std::size_t>(
                                   ff_index[chain.ffs[k - 1]])];
        const Val expect = chain.segments[k].inverting ? !prev : prev;
        ASSERT_EQ(after[static_cast<std::size_t>(ff_index[chain.ffs[k]])],
                  expect)
            << nl.name() << " chain " << ci << " pos " << k << " cycle "
            << cycle;
      }
    }
  }
}

TEST(Tpi, PipelineGetsFunctionalPaths) {
  Netlist nl = small_pipeline();
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, {}, &stats);
  EXPECT_EQ(nl.validate(), "");
  ASSERT_EQ(d.chains.size(), 1u);
  EXPECT_EQ(d.chains[0].length(), 3u);
  // f2 (through NAND) and f3 (through NOR) can be linked functionally.
  EXPECT_GE(stats.functional_segments, 2);
  EXPECT_LT(d.scan_muxes, 3);
}

TEST(Tpi, FunctionalSegmentsSaveMuxesVsFullScan) {
  Netlist tpi_nl = small_pipeline();
  TpiStats stats;
  run_tpi(tpi_nl, {}, &stats);
  Netlist mux_nl = small_pipeline();
  const ScanDesign md = insert_mux_scan(mux_nl);
  EXPECT_LT(stats.mux_segments, md.scan_muxes);
}

TEST(Tpi, ShiftInvariantOnPipeline) {
  Netlist nl = small_pipeline();
  const ScanDesign d = run_tpi(nl);
  check_shift_invariant(nl, d);
}

TEST(Tpi, ShiftInvariantOnCounter) {
  Netlist nl = small_counter();
  const ScanDesign d = run_tpi(nl);
  check_shift_invariant(nl, d);
}

TEST(Tpi, ShiftInvariantOnS27) {
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  check_shift_invariant(nl, d);
}

class TpiRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TpiRandom, ShiftInvariantOnRandomCircuits) {
  RandomCircuitSpec spec;
  spec.num_gates = 250;
  spec.num_ffs = 24;
  spec.num_pis = 8;
  spec.num_pos = 6;
  spec.seed = GetParam();
  Netlist nl = make_random_sequential(spec);
  const ScanDesign d = run_tpi(nl);
  EXPECT_EQ(nl.validate(), "");
  std::size_t total = 0;
  for (const ScanChain& c : d.chains) total += c.length();
  EXPECT_EQ(total, 24u);
  check_shift_invariant(nl, d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpiRandom,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(Tpi, NormalModeBehaviourUnchanged) {
  Netlist ref = small_counter();
  Netlist scanned = small_counter();
  const ScanDesign d = run_tpi(scanned);
  const Levelizer rlv(ref), slv(scanned);
  SeqSim rsim(rlv), ssim(slv);
  rsim.reset(k0);
  ssim.reset(k0);
  for (int t = 0; t < 20; ++t) {
    const Val en = (t % 3 == 0) ? k0 : k1;
    rsim.step(std::vector<Val>{en});
    // scan_mode = 0, en as given, everything else 0.
    std::vector<Val> v(scanned.inputs().size(), k0);
    for (std::size_t i = 0; i < scanned.inputs().size(); ++i) {
      if (scanned.inputs()[i] == scanned.find("en")) v[i] = en;
    }
    ssim.step(v);
    for (std::size_t i = 0; i < ref.dffs().size(); ++i) {
      ASSERT_EQ(rsim.state()[i], ssim.state()[i]) << "cycle " << t;
    }
  }
}

TEST(Tpi, MultipleChainsBalanced) {
  RandomCircuitSpec spec;
  spec.num_gates = 300;
  spec.num_ffs = 30;
  spec.seed = 77;
  Netlist nl = make_random_sequential(spec);
  TpiOptions opt;
  opt.num_chains = 3;
  const ScanDesign d = run_tpi(nl, opt);
  ASSERT_EQ(d.chains.size(), 3u);
  for (const ScanChain& c : d.chains) {
    EXPECT_GE(c.length(), 5u);
    EXPECT_LE(c.length(), 15u);
  }
  check_shift_invariant(nl, d);
}

TEST(Tpi, TestPointsTransparentInNormalMode) {
  // Any inserted test point must compute identity when scan_mode=0.
  Netlist nl = small_pipeline();
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, {}, &stats);
  (void)d;
  const Levelizer lv(nl);
  // Evaluate with scan_mode=0: every _tp gate output equals its pin-0 input.
  std::vector<Val> v(nl.size(), Val::X);
  std::mt19937_64 rng(5);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    v[nl.inputs()[i]] = (rng() & 1) ? k1 : k0;
  }
  v[d.scan_mode] = k0;
  for (NodeId q : nl.dffs()) v[q] = (rng() & 1) ? k1 : k0;
  CombSim sim(lv);
  sim.run(v);
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (nl.node_name(id).rfind("_tp", 0) == 0) {
      EXPECT_EQ(v[id], v[nl.fanins(id)[0]]) << nl.node_name(id);
    }
  }
}

TEST(Tpi, ChainsCoverEveryFlipFlopExactlyOnce) {
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 16;
  spec.seed = 31;
  Netlist nl = make_random_sequential(spec);
  const std::vector<NodeId> ffs_before = nl.dffs();
  const ScanDesign d = run_tpi(nl);
  std::vector<NodeId> seen;
  for (const ScanChain& c : d.chains) {
    for (NodeId ff : c.ffs) seen.push_back(ff);
  }
  std::sort(seen.begin(), seen.end());
  std::vector<NodeId> want = ffs_before;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(seen, want);
}

}  // namespace
}  // namespace fsct
