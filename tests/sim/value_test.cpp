#include "sim/value.h"

#include <gtest/gtest.h>

#include <vector>

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;
constexpr Val kX = Val::X;

Val eval2(GateType t, Val a, Val b) {
  const Val ins[2] = {a, b};
  return eval_gate(t, ins, 2);
}

TEST(Value, Not) {
  EXPECT_EQ(!k0, k1);
  EXPECT_EQ(!k1, k0);
  EXPECT_EQ(!kX, kX);
}

TEST(Value, CharConversions) {
  EXPECT_EQ(val_char(k0), '0');
  EXPECT_EQ(val_char(k1), '1');
  EXPECT_EQ(val_char(kX), 'X');
  EXPECT_EQ(val_from_char('0'), k0);
  EXPECT_EQ(val_from_char('x'), kX);
  EXPECT_THROW(val_from_char('q'), std::invalid_argument);
}

TEST(Value, AndTernary) {
  EXPECT_EQ(eval2(GateType::And, k0, kX), k0);  // controlling wins over X
  EXPECT_EQ(eval2(GateType::And, k1, kX), kX);
  EXPECT_EQ(eval2(GateType::And, k1, k1), k1);
  EXPECT_EQ(eval2(GateType::Nand, k0, kX), k1);
  EXPECT_EQ(eval2(GateType::Nand, k1, k1), k0);
}

TEST(Value, OrTernary) {
  EXPECT_EQ(eval2(GateType::Or, k1, kX), k1);
  EXPECT_EQ(eval2(GateType::Or, k0, kX), kX);
  EXPECT_EQ(eval2(GateType::Nor, k1, kX), k0);
  EXPECT_EQ(eval2(GateType::Nor, k0, k0), k1);
}

TEST(Value, XorTernary) {
  EXPECT_EQ(eval2(GateType::Xor, k1, k0), k1);
  EXPECT_EQ(eval2(GateType::Xor, k1, k1), k0);
  EXPECT_EQ(eval2(GateType::Xor, k1, kX), kX);  // X always poisons XOR
  EXPECT_EQ(eval2(GateType::Xnor, k1, k0), k0);
  EXPECT_EQ(eval2(GateType::Xnor, kX, k0), kX);
}

TEST(Value, MuxTernary) {
  const Val m0[3] = {k0, k1, k0};  // sel=0 -> d0
  EXPECT_EQ(eval_gate(GateType::Mux, m0, 3), k1);
  const Val m1[3] = {k1, k1, k0};  // sel=1 -> d1
  EXPECT_EQ(eval_gate(GateType::Mux, m1, 3), k0);
  const Val mx_agree[3] = {kX, k1, k1};
  EXPECT_EQ(eval_gate(GateType::Mux, mx_agree, 3), k1);
  const Val mx_differ[3] = {kX, k1, k0};
  EXPECT_EQ(eval_gate(GateType::Mux, mx_differ, 3), kX);
}

TEST(Value, BufAndConsts) {
  const Val in[1] = {kX};
  EXPECT_EQ(eval_gate(GateType::Buf, in, 1), kX);
  EXPECT_EQ(eval_gate(GateType::Const0, nullptr, 0), k0);
  EXPECT_EQ(eval_gate(GateType::Const1, nullptr, 0), k1);
}

TEST(Value, ControllingValues) {
  EXPECT_EQ(controlling_value(GateType::And), k0);
  EXPECT_EQ(controlling_value(GateType::Nand), k0);
  EXPECT_EQ(controlling_value(GateType::Or), k1);
  EXPECT_EQ(controlling_value(GateType::Nor), k1);
  EXPECT_EQ(controlling_value(GateType::Xor), kX);
  EXPECT_TRUE(is_inverting(GateType::Nand));
  EXPECT_TRUE(is_inverting(GateType::Not));
  EXPECT_FALSE(is_inverting(GateType::And));
}

TEST(PackedVal, BroadcastAndAt) {
  const PackedVal z = PackedVal::broadcast(k0);
  const PackedVal o = PackedVal::broadcast(k1);
  const PackedVal x = PackedVal::broadcast(kX);
  for (unsigned b : {0u, 31u, 63u}) {
    EXPECT_EQ(z.at(b), k0);
    EXPECT_EQ(o.at(b), k1);
    EXPECT_EQ(x.at(b), kX);
  }
}

TEST(PackedVal, SetIndividualBits) {
  PackedVal v;
  v.set(3, k1);
  v.set(7, k0);
  EXPECT_EQ(v.at(3), k1);
  EXPECT_EQ(v.at(7), k0);
  EXPECT_EQ(v.at(0), kX);
  v.set(3, kX);
  EXPECT_EQ(v.at(3), kX);
  EXPECT_EQ(v.zero & v.one, 0u);
}

// Property: packed evaluation agrees with scalar evaluation bit-per-bit.
class PackedAgreement : public ::testing::TestWithParam<GateType> {};

TEST_P(PackedAgreement, MatchesScalarOnAllTernaryPairs) {
  const GateType t = GetParam();
  const Val vals[3] = {k0, k1, kX};
  PackedVal a, b;
  std::vector<std::pair<Val, Val>> cases;
  unsigned bit = 0;
  for (Val va : vals) {
    for (Val vb : vals) {
      a.set(bit, va);
      b.set(bit, vb);
      cases.emplace_back(va, vb);
      ++bit;
    }
  }
  const PackedVal ins[2] = {a, b};
  const PackedVal out = eval_gate_packed(t, ins, 2);
  for (unsigned i = 0; i < bit; ++i) {
    const Val sins[2] = {cases[i].first, cases[i].second};
    EXPECT_EQ(out.at(i), eval_gate(t, sins, 2))
        << gate_type_name(t) << " bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGateTypes, PackedAgreement,
                         ::testing::Values(GateType::And, GateType::Nand,
                                           GateType::Or, GateType::Nor,
                                           GateType::Xor, GateType::Xnor));

TEST(PackedVal, MuxPackedMatchesScalarAllTriples) {
  const Val vals[3] = {k0, k1, kX};
  PackedVal s, d0, d1;
  std::vector<std::array<Val, 3>> cases;
  unsigned bit = 0;
  for (Val vs : vals) {
    for (Val v0 : vals) {
      for (Val v1 : vals) {
        s.set(bit, vs);
        d0.set(bit, v0);
        d1.set(bit, v1);
        cases.push_back({vs, v0, v1});
        ++bit;
      }
    }
  }
  const PackedVal ins[3] = {s, d0, d1};
  const PackedVal out = eval_gate_packed(GateType::Mux, ins, 3);
  for (unsigned i = 0; i < bit; ++i) {
    const Val sins[3] = {cases[i][0], cases[i][1], cases[i][2]};
    EXPECT_EQ(out.at(i), eval_gate(GateType::Mux, sins, 3)) << "bit " << i;
  }
}

}  // namespace
}  // namespace fsct
