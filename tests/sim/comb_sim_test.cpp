#include "sim/comb_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;
constexpr Val kX = Val::X;

struct Fixture {
  Netlist nl;
  Levelizer lv;
  CombSim sim;
  explicit Fixture(Netlist n) : nl(std::move(n)), lv(nl), sim(lv) {}
};

TEST(CombSim, EvaluatesSimpleCone) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Nand, {a, b}, "g");
  const NodeId y = nl.add_gate(GateType::Not, {g}, "y");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k1;
  v[b] = k1;
  f.sim.run(v);
  EXPECT_EQ(v[g], k0);
  EXPECT_EQ(v[y], k1);
}

TEST(CombSim, ConstantsForcedRegardlessOfCaller) {
  Netlist nl("c");
  const NodeId c1 = nl.add_const(true, "c1");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::And, {c1, a}, "g");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k1;
  v[c1] = k0;  // caller lies; run() overwrites
  f.sim.run(v);
  EXPECT_EQ(v[c1], k1);
  EXPECT_EQ(v[g], k1);
}

TEST(CombSim, OutputInjectionOverridesGate) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Buf, {a}, "g");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k1;
  const Injection inj[] = {{g, -1, k0}};
  f.sim.run(v, inj);
  EXPECT_EQ(v[g], k0);
}

TEST(CombSim, PinInjectionAffectsOnlyThatGate) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Buf, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k1;
  const Injection inj[] = {{g1, 0, k0}};
  f.sim.run(v, inj);
  EXPECT_EQ(v[g1], k0);
  EXPECT_EQ(v[g2], k1);
  EXPECT_EQ(v[a], k1);  // the driver net itself is healthy
}

TEST(CombSim, SourceInjectionOnInput) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k1;
  const Injection inj[] = {{a, -1, k0}};
  f.sim.run(v, inj);
  EXPECT_EQ(v[a], k0);
  EXPECT_EQ(v[g], k1);
}

TEST(CombSim, DValueReadsDffInput) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  const NodeId q = nl.add_dff(g, "q");
  Fixture f(std::move(nl));
  std::vector<Val> v(f.nl.size(), kX);
  v[a] = k0;
  v[q] = kX;
  f.sim.run(v);
  EXPECT_EQ(f.sim.d_value(q, v), k1);
  const Injection inj[] = {{q, 0, k0}};
  EXPECT_EQ(f.sim.d_value(q, v, inj), k0);
}

// Property: packed simulation of 64 random patterns agrees with 64 scalar
// runs, on random circuits.
TEST(PackedCombSim, AgreesWithScalarOnRandomCircuits) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    RandomCircuitSpec spec;
    spec.num_gates = 150;
    spec.num_ffs = 10;
    spec.num_pis = 6;
    spec.seed = 100 + static_cast<std::uint64_t>(trial);
    Fixture f(make_random_sequential(spec));
    PackedCombSim psim(f.lv);

    std::vector<std::vector<Val>> patterns(64);
    std::vector<PackedVal> pv(f.nl.size());
    for (unsigned b = 0; b < 64; ++b) {
      patterns[b].assign(f.nl.size(), kX);
      for (NodeId s : f.nl.inputs()) {
        const Val val = (rng() % 3 == 0) ? kX : ((rng() & 1) ? k1 : k0);
        patterns[b][s] = val;
        pv[s].set(b, val);
      }
      for (NodeId s : f.nl.dffs()) {
        const Val val = (rng() & 1) ? k1 : k0;
        patterns[b][s] = val;
        pv[s].set(b, val);
      }
    }
    psim.run(pv);
    for (unsigned b = 0; b < 64; ++b) {
      f.sim.run(patterns[b]);
      for (NodeId id = 0; id < f.nl.size(); ++id) {
        ASSERT_EQ(pv[id].at(b), patterns[b][id])
            << "node " << f.nl.node_name(id) << " bit " << b;
      }
    }
  }
}

TEST(PackedCombSim, MaskedInjectionHitsOnlySelectedPatterns) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Buf, {a}, "g");
  Fixture f(std::move(nl));
  std::vector<PackedVal> v(f.nl.size());
  v[a] = PackedVal::broadcast(k1);
  PackedCombSim psim(f.lv);
  const PackedInjection inj[] = {{g, -1, 0b101ull, k0}};
  psim.run(v, inj);
  EXPECT_EQ(v[g].at(0), k0);
  EXPECT_EQ(v[g].at(1), k1);
  EXPECT_EQ(v[g].at(2), k0);
  EXPECT_EQ(v[g].at(3), k1);
}

}  // namespace
}  // namespace fsct
