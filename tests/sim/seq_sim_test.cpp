#include "sim/seq_sim.h"

#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "netlist/bench_io.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;
constexpr Val kX = Val::X;

// Two-stage shift register: q1 <- a, q2 <- q1.
Netlist shift2() {
  Netlist nl("shift2");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff(a, "q1");
  nl.add_dff(q1, "q2");
  nl.mark_output(nl.find("q2"));
  return nl;
}

TEST(SeqSim, PowerUpStateIsX) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  EXPECT_EQ(sim.state()[0], kX);
  EXPECT_EQ(sim.state()[1], kX);
}

TEST(SeqSim, ShiftsValuesThroughRegisters) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  const std::vector<Val> one{k1}, zero{k0};
  sim.step(one);
  EXPECT_EQ(sim.state()[0], k1);
  EXPECT_EQ(sim.state()[1], k0);
  sim.step(zero);
  EXPECT_EQ(sim.state()[0], k0);
  EXPECT_EQ(sim.state()[1], k1);
}

TEST(SeqSim, ValuesSampledBeforeClockEdge) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.set_state(std::vector<Val>{k1, k0});
  const auto& v = sim.step(std::vector<Val>{k0});
  // Q values seen during the cycle are the pre-edge state.
  EXPECT_EQ(v[nl.find("q1")], k1);
  EXPECT_EQ(v[nl.find("q2")], k0);
}

TEST(SeqSim, PersistentInjectionActsEveryCycle) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  const Injection inj[] = {{nl.find("q1"), -1, k1}};  // q1 output s-a-1
  sim.step(std::vector<Val>{k0}, inj);
  // q2 captured the stuck q1.
  EXPECT_EQ(sim.state()[1], k1);
  sim.step(std::vector<Val>{k0}, inj);
  EXPECT_EQ(sim.state()[1], k1);
}

TEST(SeqSim, SizeMismatchThrows) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  EXPECT_THROW(sim.step(std::vector<Val>{}), std::invalid_argument);
  EXPECT_THROW(sim.set_state(std::vector<Val>{k0}), std::invalid_argument);
}

TEST(SeqSim, S27MatchesHandComputedCycle) {
  const Netlist nl = iscas_s27();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);  // G5=G6=G7=0
  // PIs G0..G3 = 0.
  const auto& v = sim.step(std::vector<Val>{k0, k0, k0, k0});
  // Hand evaluation: G14=NOT(G0)=1, G8=AND(G14,G6)=0, G12=NOR(G1,G7)=1,
  // G15=OR(G12,G8)=1, G16=OR(G3,G8)=0, G9=NAND(G16,G15)=1,
  // G10=NOR(G14,G11): G11=NOR(G5,G9)=NOR(0,1)=0 -> G10=NOR(1,0)=0,
  // G13=NAND(G2,G12)=NAND(0,1)=1, G17=NOT(G11)=1.
  EXPECT_EQ(v[nl.find("G17")], k1);
  EXPECT_EQ(sim.state()[0], k0);  // G5 <- G10 = 0
  EXPECT_EQ(sim.state()[1], k0);  // G6 <- G11 = 0
  EXPECT_EQ(sim.state()[2], k1);  // G7 <- G13 = 1
}

TEST(PackedSeqSim, MatchesScalarAcrossMachines) {
  const Netlist nl = iscas_s27();
  const Levelizer lv(nl);
  // Bit b: PI vector = binary expansion of b over 4 PIs, 3 cycles.
  PackedSeqSim psim(lv);
  psim.reset(k0);
  std::vector<SeqSim> scalar(16, SeqSim(lv));
  for (auto& s : scalar) s.reset(k0);

  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<PackedVal> ppi(4);
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<Val> pi(4);
      for (unsigned i = 0; i < 4; ++i) {
        pi[i] = ((b >> i) & 1) ? k1 : k0;
        ppi[i].set(b, pi[i]);
      }
      scalar[b].step(pi);
    }
    psim.step(ppi);
    for (unsigned b = 0; b < 16; ++b) {
      for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
        ASSERT_EQ(psim.state()[i].at(b), scalar[b].state()[i])
            << "cycle " << cycle << " machine " << b << " ff " << i;
      }
    }
  }
}

TEST(PackedSeqSim, InjectionPerMachine) {
  const Netlist nl = shift2();
  const Levelizer lv(nl);
  PackedSeqSim sim(lv);
  sim.reset(k0);
  std::vector<PackedVal> pi(1);
  pi[0] = PackedVal::broadcast(k0);
  const PackedInjection inj[] = {{nl.find("q1"), -1, 0b10ull, k1}};
  sim.step(pi, inj);
  EXPECT_EQ(sim.state()[1].at(0), k0);  // machine 0: healthy
  EXPECT_EQ(sim.state()[1].at(1), k1);  // machine 1: faulty
}

}  // namespace
}  // namespace fsct
