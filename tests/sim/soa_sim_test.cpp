// SoA core + wide-simulator equivalence properties (DESIGN.md §5h):
//  * SoaCircuit is a faithful flat view of the Levelizer snapshot,
//  * WideSim<NW> equals the scalar CombSim lane-for-lane on every suite
//    circuit, X values included,
//  * WideSeqSim<NW> equals the scalar SeqSim over multi-cycle runs on random
//    sequential circuits with X propagation,
//  * injection masks are lane-local: un-masked lanes carry the good machine.
#include "sim/soa_circuit.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "bench_circuits/suite.h"
#include "sim/comb_sim.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

Val rand_3val(std::mt19937_64& rng) {
  const auto r = rng() & 7;
  return r < 2 ? Val::X : (r & 1) ? Val::One : Val::Zero;
}

/// All 13 circuits the suite-conformance tests cover: s27 + the 12-entry
/// paper suite.
std::vector<Netlist> all_suite_circuits() {
  std::vector<Netlist> out;
  out.push_back(iscas_s27());
  for (const SuiteEntry& e : paper_suite()) {
    out.push_back(build_suite_circuit(e));
  }
  return out;
}

TEST(SoaCircuit, FlatViewMatchesLevelizer) {
  const Netlist nl = iscas_s27();
  const Levelizer lv(nl);
  const auto soa = SoaCircuit::compile(lv);

  ASSERT_EQ(soa->size(), nl.size());
  std::size_t comb_gates = 0;
  for (NodeId id = 0; id < nl.size(); ++id) {
    EXPECT_EQ(soa->type(id), nl.type(id));
    EXPECT_EQ(soa->level(id), lv.level(id));
    const auto& fins = nl.fanins(id);
    ASSERT_EQ(soa->fanin_count(id), fins.size());
    for (std::size_t p = 0; p < fins.size(); ++p) {
      EXPECT_EQ(soa->fanin(id)[p], fins[p]);
    }
    // Fanouts: the combinational subsequence of the Levelizer's list, in
    // the same order.
    std::vector<NodeId> want;
    for (NodeId s : lv.fanouts(id)) {
      if (is_combinational(nl.type(s))) want.push_back(s);
    }
    ASSERT_EQ(soa->fanout_count(id), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(soa->fanout(id)[k], want[k]);
    }
    comb_gates += is_combinational(nl.type(id));
  }

  // order() covers every combinational gate exactly once, level-monotone,
  // and runs() tile it with matching types.
  EXPECT_EQ(soa->order().size(), comb_gates);
  std::vector<char> seen(nl.size(), 0);
  int prev_level = -1;
  for (NodeId id : soa->order()) {
    EXPECT_TRUE(is_combinational(soa->type(id)));
    EXPECT_FALSE(seen[id]);
    seen[id] = 1;
    EXPECT_GE(soa->level(id), prev_level);
    prev_level = soa->level(id);
  }
  std::uint32_t pos = 0;
  for (const SoaRun& r : soa->runs()) {
    EXPECT_EQ(r.begin, pos);
    for (std::uint32_t i = r.begin; i < r.end; ++i) {
      EXPECT_EQ(soa->type(soa->order()[i]), r.type);
    }
    pos = r.end;
  }
  EXPECT_EQ(pos, soa->order().size());
}

TEST(SoaCircuit, DffBookkeeping) {
  const Netlist nl = iscas_s27();
  const Levelizer lv(nl);
  const auto soa = SoaCircuit::compile(lv);
  ASSERT_EQ(soa->dffs().size(), nl.dffs().size());
  ASSERT_EQ(soa->dff_d().size(), nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    EXPECT_EQ(soa->dffs()[i], nl.dffs()[i]);
    EXPECT_EQ(soa->dff_d()[i], nl.fanins(nl.dffs()[i])[0]);
  }
  EXPECT_EQ(soa->inputs(), nl.inputs());
}

/// Runs WideSim<NW> with `kSample` random 3-valued source assignments spread
/// over the lane range and checks each against the scalar CombSim.
template <int NW>
void check_wide_comb(const Netlist& nl, const Levelizer& lv,
                     std::mt19937_64& rng) {
  const auto soa = SoaCircuit::compile(lv);
  std::vector<NodeId> sources = nl.inputs();
  for (NodeId ff : nl.dffs()) sources.push_back(ff);

  constexpr unsigned kSample = 6;
  // Spread the sampled lanes across every word of the block.
  unsigned lanes[kSample];
  for (unsigned k = 0; k < kSample; ++k) {
    lanes[k] = (k * (WideVal<NW>::kLanes - 1)) / (kSample - 1);
  }

  std::vector<std::vector<Val>> scalar_src(
      kSample, std::vector<Val>(sources.size()));
  WideSim<NW> wsim(soa);
  for (NodeId s : sources) wsim.value(s) = WideVal<NW>::broadcast(Val::X);
  for (unsigned k = 0; k < kSample; ++k) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const Val v = rand_3val(rng);
      scalar_src[k][s] = v;
      wsim.value(sources[s]).set(lanes[k], v);
    }
  }
  wsim.run();

  CombSim csim(lv);
  std::vector<Val> values(nl.size());
  for (unsigned k = 0; k < kSample; ++k) {
    std::fill(values.begin(), values.end(), Val::X);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      values[sources[s]] = scalar_src[k][s];
    }
    csim.run(values);
    for (NodeId id = 0; id < nl.size(); ++id) {
      ASSERT_EQ(wsim.value(id).at(lanes[k]), values[id])
          << nl.name() << " net " << nl.node_name(id) << " lane " << lanes[k]
          << " width " << 64 * NW;
    }
  }
}

TEST(WideSim, MatchesCombSimOnAllSuiteCircuits) {
  std::mt19937_64 rng(2026);
  for (const Netlist& nl : all_suite_circuits()) {
    const Levelizer lv(nl);
    check_wide_comb<1>(nl, lv, rng);
    check_wide_comb<4>(nl, lv, rng);
    check_wide_comb<8>(nl, lv, rng);
  }
}

/// Multi-cycle equivalence with X initial state and X-bearing stimulus.
template <int NW>
void check_wide_seq(const Netlist& nl, const Levelizer& lv,
                    std::mt19937_64& rng) {
  const auto soa = SoaCircuit::compile(lv);
  constexpr unsigned kSample = 4;
  unsigned lanes[kSample];
  for (unsigned k = 0; k < kSample; ++k) {
    lanes[k] = (k * (WideVal<NW>::kLanes - 1)) / (kSample - 1);
  }

  const int cycles = 15;
  // Per-sample scalar stimulus; the wide run carries all samples at once.
  std::vector<std::vector<std::vector<Val>>> scalar_seq(kSample);
  std::vector<std::vector<WideVal<NW>>> wide_seq(
      cycles,
      std::vector<WideVal<NW>>(nl.inputs().size(),
                               WideVal<NW>::broadcast(Val::X)));
  for (unsigned k = 0; k < kSample; ++k) {
    for (int t = 0; t < cycles; ++t) {
      std::vector<Val> v(nl.inputs().size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = rand_3val(rng);
        wide_seq[t][i].set(lanes[k], v[i]);
      }
      scalar_seq[k].push_back(std::move(v));
    }
  }

  WideSeqSim<NW> wsim(soa);
  wsim.reset(Val::X);
  std::vector<SeqSim> ssims(kSample, SeqSim(lv));
  for (auto& s : ssims) s.reset(Val::X);

  for (int t = 0; t < cycles; ++t) {
    const WideSim<NW>& wv = wsim.step(wide_seq[t]);
    for (unsigned k = 0; k < kSample; ++k) {
      const auto& sv = ssims[k].step(scalar_seq[k][t]);
      for (NodeId id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(wv.value(id).at(lanes[k]), sv[id])
            << nl.name() << " cycle " << t << " net " << nl.node_name(id)
            << " lane " << lanes[k] << " width " << 64 * NW;
      }
    }
  }
}

TEST(WideSeqSim, MatchesSeqSimWithXPropagation) {
  std::mt19937_64 rng(7);
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    RandomCircuitSpec spec;
    spec.num_gates = 90;
    spec.num_ffs = 10;
    spec.num_pis = 5;
    spec.num_pos = 4;
    spec.seed = seed;
    const Netlist nl = make_random_sequential(spec);
    const Levelizer lv(nl);
    check_wide_seq<1>(nl, lv, rng);
    check_wide_seq<4>(nl, lv, rng);
    check_wide_seq<8>(nl, lv, rng);
  }
}

TEST(WideSim, InjectionMasksAreLaneLocal) {
  // a -> buf -> po; stem s-a-0 on `a` masked to lane 200 only: that lane
  // reads 0 downstream, every other lane keeps the good value 1.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId buf = nl.add_gate(GateType::Buf, {a}, "buf");
  nl.mark_output(buf);
  const Levelizer lv(nl);
  const auto soa = SoaCircuit::compile(lv);

  WideSim<4> sim(soa);
  sim.value(a) = WideVal<4>::broadcast(Val::One);
  WideInjection<4> inj;
  inj.node = a;
  inj.pin = -1;
  inj.value = Val::Zero;
  inj.mask[200 / 64] = 1ull << (200 % 64);
  const WideInjection<4> injs[1] = {inj};
  sim.run(injs);
  for (unsigned lane = 0; lane < WideVal<4>::kLanes; ++lane) {
    EXPECT_EQ(sim.value(buf).at(lane), lane == 200 ? Val::Zero : Val::One);
  }
}

TEST(SimdWidth, DefaultAndValidation) {
  EXPECT_TRUE(is_valid_simd_width(64));
  EXPECT_TRUE(is_valid_simd_width(256));
  EXPECT_TRUE(is_valid_simd_width(512));
  EXPECT_FALSE(is_valid_simd_width(128));
  EXPECT_FALSE(is_valid_simd_width(0));

  const int prev = default_simd_width();
  EXPECT_TRUE(is_valid_simd_width(prev));
  set_default_simd_width(512);
  EXPECT_EQ(default_simd_width(), 512);
  EXPECT_THROW(set_default_simd_width(100), std::invalid_argument);
  EXPECT_EQ(default_simd_width(), 512);
  set_default_simd_width(prev);
}

}  // namespace
}  // namespace fsct
