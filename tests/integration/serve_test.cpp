// `fsct serve` contract tests (the Serve.* prefix is in the TSan gate, see
// tools/check.sh):
//
//  * determinism — a served report, normalized (timings/RSS stripped), is
//    bitwise identical to the `fsct test` flow for the same request, on
//    several suite circuits and across two concurrent socket sessions;
//  * caching — a repeated request hits the compiled-model cache (counter-
//    asserted: zero SoA compilations in the cached run) and, when enabled,
//    the result cache, without changing the report;
//  * lifecycle — bad requests come back as error events, a client that
//    hangs up early never kills the daemon, and a drain request lets run()
//    return.
#include "serve/serve.h"

#include <gtest/gtest.h>

#ifndef _WIN32

#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_circuits/suite.h"
#include "core/io_util.h"
#include "core/json.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "fault/fault.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "scan/tpi.h"
#include "serve/http.h"
#include "serve/net.h"
#include "sim/soa_circuit.h"

namespace fsct {
namespace {

ServeOptions quiet_options() {
  ServeOptions opt;
  opt.tcp_port = 0;  // ephemeral loopback listener; tests use process_line
  opt.log = [](const std::string&) {};
  return opt;
}

std::string suite_bench(int i) {
  return write_bench_string(build_suite_circuit(paper_suite()[i]));
}

// ISCAS'89 s27: small enough that every phase finishes orders of magnitude
// under the ATPG wall budgets even at sanitizer speed, so per-run work (and
// with it the SoA compile count) is exactly reproducible.
const char* kS27 =
    "INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G17)\n"
    "G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\nG14 = NOT(G0)\n"
    "G17 = NOT(G11)\nG8 = AND(G14, G6)\nG15 = OR(G12, G8)\n"
    "G16 = OR(G3, G8)\nG9 = NAND(G16, G15)\nG10 = NOR(G14, G11)\n"
    "G11 = NOR(G5, G9)\nG12 = NOR(G1, G7)\nG13 = NAND(G2, G12)\n";

// Independent re-implementation of the `fsct test --metrics` flow — no serve
// code, no caches, no PipelineCompiled — producing the run report the daemon
// must match (the determinism contract of DESIGN.md §5j).
std::string cli_reference_report(const std::string& bench, int chains) {
  Netlist nl = read_bench_string(bench, "ref");
  TpiOptions topt;
  topt.num_chains = chains;
  const ScanDesign design = run_tpi(nl, topt);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, design);
  EXPECT_EQ(model.check(), "");
  const std::vector<Fault> faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  // Mirror of the daemon's pipeline config: wall budgets off (deterministic
  // backtrack caps only), so the comparison cannot depend on machine load.
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  opt.verify_easy = true;
  opt.jobs = 1;
  ObsRegistry reg;
  opt.obs = &reg;
  reg.set_context("ref");
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  std::ostringstream ms;
  reg.write_run_report(ms, r, nullptr);
  return ms.str();
}

std::string request_line(const std::string& id, const std::string& bench,
                         int chains, bool use_result_cache = true) {
  return "{\"id\": \"" + id + "\", \"circuit\": \"" + json_escape(bench) +
         "\", \"use_result_cache\": " +
         (use_result_cache ? "true" : "false") +
         ", \"config\": {\"chains\": " + std::to_string(chains) +
         ", \"jobs\": 1}}";
}

// The raw report object of a result event; the report is the line's last
// member (see ServeServer::run_request).
std::string report_of(const std::string& result_line) {
  const std::string key = "\"report\": ";
  const auto pos = result_line.find(key);
  EXPECT_NE(pos, std::string::npos) << result_line;
  if (pos == std::string::npos) return "";
  return result_line.substr(pos + key.size(),
                            result_line.size() - (pos + key.size()) - 1);
}

// Drops the per-response `"serve"` section (the server-assigned request_id,
// stamped at send time — see with_serve_section in serve.cpp) so replayed
// reports can be byte-compared against their cold originals.
std::string without_serve_section(std::string report) {
  const std::string key = ", \"serve\": {";
  const std::size_t pos = report.rfind(key);
  EXPECT_NE(pos, std::string::npos) << report;
  if (pos == std::string::npos) return report;
  const std::size_t end = report.find('}', pos);
  EXPECT_NE(end, std::string::npos) << report;
  if (end == std::string::npos) return report;
  report.erase(pos, end + 1 - pos);
  return report;
}

TEST(Serve, NormalizedReportStripsVolatileKeysAndSortsKeys) {
  const std::string a =
      "{\"z\": 1, \"elapsed_seconds\": 2.5, \"rss_phases\": {\"x\": 1}, "
      "\"a\": {\"cpu_time_ms\": 3, \"n\": 4, \"sim_passes\": 7}}";
  const std::string b =
      "{\"a\": {\"n\": 4, \"cpu_time_ms\": 9}, \"z\": 1, "
      "\"rss_phases\": {\"y\": 2}}";
  EXPECT_EQ(normalized_report(a), "{\"a\":{\"n\":4},\"z\":1}");
  EXPECT_EQ(normalized_report(a), normalized_report(b));
}

TEST(Serve, ServedReportMatchesCliBitwiseOnSuiteCircuits) {
  ServeServer srv(quiet_options());
  for (int i = 0; i < 3; ++i) {
    const SuiteEntry& e = paper_suite()[i];
    const std::string bench = suite_bench(i);
    const std::string line =
        srv.process_line(request_line(e.name, bench, e.chains));
    ASSERT_NE(line.find("\"status\": \"ok\""), std::string::npos) << line;
    EXPECT_EQ(normalized_report(report_of(line)),
              normalized_report(cli_reference_report(bench, e.chains)))
        << e.name;
  }
}

TEST(Serve, SoaMemoCompilesOncePerLevelizer) {
  const Netlist nl = read_bench_string(suite_bench(0), "memo");
  const Levelizer lv(nl);
  const std::uint64_t before = soa_compile_count();
  const auto a = SoaCircuit::compile(lv);
  const auto b = SoaCircuit::compile(lv);
  EXPECT_EQ(a.get(), b.get());  // one shared flat compilation
  EXPECT_EQ(soa_compile_count(), before + 1);
}

TEST(Serve, RepeatedRequestHitsModelCacheWithoutRecompiling) {
  ServeServer srv(quiet_options());
  const std::string bench = kS27;
  // Result cache off, so the second request re-runs the pipeline against
  // the cached model instead of replaying a stored report.
  const std::uint64_t base = soa_compile_count();
  const std::string first = srv.process_line(request_line("a", bench, 1, false));
  ASSERT_NE(first.find("\"model_cache\": \"miss\""), std::string::npos)
      << first;
  const std::uint64_t after_first = soa_compile_count();
  const std::string second =
      srv.process_line(request_line("b", bench, 1, false));
  EXPECT_NE(second.find("\"model_cache\": \"hit\""), std::string::npos)
      << second;
  // Counter-asserted cache hit.  The pipeline compiles fresh unrolled ATPG
  // models every run (identically on identical runs at jobs=1, and s27 is
  // far too small for a wall budget to ever truncate work), so the cached
  // request's compile count must come in exactly one short of the cold
  // one: the model's compile phase — and only it — was skipped.
  EXPECT_EQ(soa_compile_count() - after_first, (after_first - base) - 1);
  const ServeStats st = srv.stats();
  EXPECT_EQ(st.models_compiled, 1u);
  EXPECT_EQ(st.model_cache_hits, 1u);
  // Cache warmth never leaks into results.
  EXPECT_EQ(normalized_report(report_of(first)),
            normalized_report(report_of(second)));
}

TEST(Serve, ResultCacheReplaysIdenticalReport) {
  ServeServer srv(quiet_options());
  const SuiteEntry& e = paper_suite()[0];
  const std::string bench = suite_bench(0);
  const std::string first =
      srv.process_line(request_line("r1", bench, e.chains));
  ASSERT_NE(first.find("\"result_cache\": \"miss\""), std::string::npos)
      << first;
  // Same circuit and config under a different id: the result key excludes
  // the id, so this replays the stored report verbatim.
  const std::string second =
      srv.process_line(request_line("r2", bench, e.chains));
  EXPECT_NE(second.find("\"result_cache\": \"hit\""), std::string::npos)
      << second;
  EXPECT_EQ(srv.stats().result_cache_hits, 1u);
  // Verbatim replay, apart from the per-response serve stamp: the cache
  // stores the UN-stamped report and each response gets a fresh request_id.
  EXPECT_EQ(without_serve_section(report_of(first)),
            without_serve_section(report_of(second)));
  EXPECT_NE(first.find("\"serve\": {\"request_id\": 1}"), std::string::npos)
      << first;
  EXPECT_NE(second.find("\"serve\": {\"request_id\": 2}"), std::string::npos)
      << second;
}

TEST(Serve, MalformedRequestsComeBackAsBadRequestEvents) {
  ServeServer srv(quiet_options());
  const std::string missing = srv.process_line("{\"id\": \"x\"}");
  EXPECT_NE(missing.find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(missing.find("\"code\": \"bad_request\""), std::string::npos);
  const std::string garbage = srv.process_line("not json at all");
  EXPECT_NE(garbage.find("\"code\": \"bad_request\""), std::string::npos);
  EXPECT_EQ(srv.stats().errors, 2u);
}

TEST(Serve, TwoConcurrentSocketSessionsMatchCli) {
  const std::string path = testing::TempDir() + "fsct_serve_test.sock";
  ServeOptions opt;
  opt.unix_path = path;
  opt.workers = 2;
  opt.log = [](const std::string&) {};
  ServeServer srv(opt);
  std::thread server([&] { srv.run(); });

  std::string results[2];
  auto session = [&](int idx) {
    const SuiteEntry& e = paper_suite()[idx];
    const int fd = connect_unix(path);
    LineReader lr(fd);
    ASSERT_TRUE(write_line(fd, request_line(e.name, suite_bench(idx),
                                            e.chains, false)));
    std::string line;
    while (lr.next(line)) {
      if (line.find("\"event\": \"result\"") != std::string::npos) {
        results[idx] = line;
        break;
      }
    }
    close(fd);
  };
  std::thread s0(session, 0), s1(session, 1);
  s0.join();
  s1.join();
  srv.request_stop();
  server.join();  // returning at all proves the drain completes

  for (int idx = 0; idx < 2; ++idx) {
    const SuiteEntry& e = paper_suite()[idx];
    ASSERT_NE(results[idx].find("\"status\": \"ok\""), std::string::npos)
        << results[idx];
    EXPECT_EQ(normalized_report(report_of(results[idx])),
              normalized_report(cli_reference_report(suite_bench(idx),
                                                     e.chains)))
        << e.name;
  }
  const ServeStats st = srv.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.ok, 2u);
}

// A client that hangs up before its response arrives must cost the daemon
// nothing but that one connection: the response write hits EPIPE (SIGPIPE is
// ignored for run()'s lifetime) and the reader's bookkeeping is released
// without waiting for drain.  The follow-up session also pushes an absurd
// "priority" through the reader's peek — formerly an unchecked
// double-to-int cast, UB under UBSan — and still gets the worker's precise
// bad_request rejection, then a normal result.
TEST(Serve, ClientDisconnectBeforeResponseDoesNotKillDaemon) {
  const std::string path = testing::TempDir() + "fsct_serve_gone.sock";
  ServeOptions opt;
  opt.unix_path = path;
  opt.log = [](const std::string&) {};
  ServeServer srv(opt);
  std::thread server([&] { srv.run(); });

  {
    const int fd = connect_unix(path);
    ASSERT_TRUE(write_line(fd, request_line("gone", kS27, 1, false)));
    close(fd);  // hang up without reading the response
  }

  const int fd = connect_unix(path);
  LineReader lr(fd);
  auto next_result = [&]() {
    std::string line;
    while (lr.next(line)) {
      if (line.find("\"event\": \"result\"") != std::string::npos) return line;
    }
    return std::string();
  };
  ASSERT_TRUE(write_line(fd, "{\"id\": \"huge\", \"circuit\": \"" +
                                 json_escape(kS27) +
                                 "\", \"priority\": 1e300}"));
  const std::string rejected = next_result();
  EXPECT_NE(rejected.find("\"code\": \"bad_request\""), std::string::npos)
      << rejected;
  ASSERT_TRUE(write_line(fd, request_line("alive", kS27, 1, false)));
  const std::string result = next_result();
  EXPECT_NE(result.find("\"status\": \"ok\""), std::string::npos) << result;
  close(fd);

  srv.request_stop();
  server.join();
}

TEST(Serve, RequestStopDrainsAnIdleServer) {
  const std::string path = testing::TempDir() + "fsct_serve_idle.sock";
  ServeOptions opt;
  opt.unix_path = path;
  opt.log = [](const std::string&) {};
  ServeServer srv(opt);
  std::thread server([&] { srv.run(); });
  srv.request_stop();
  server.join();
}

// --- observability plane (GET /metrics, /healthz, /readyz, /statusz) --------

// One scrape: fresh loopback connection, full response read, fd closed.
HttpResult scrape(int port, const std::string& target) {
  return http_get_fd(connect_tcp(port), target);
}

// Value of the sample line starting with `sample` + ' ' in an OpenMetrics
// page (pass the full name including labels for histogram buckets); -1 when
// the series is absent.
double metric_value(const std::string& body, const std::string& sample) {
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.size() > sample.size() + 1 &&
        line.compare(0, sample.size(), sample) == 0 &&
        line[sample.size()] == ' ') {
      return std::atof(line.c_str() + sample.size() + 1);
    }
  }
  return -1;
}

// RAII for the pipeline's test-only phase-sleep failpoint, so a failing
// assertion can't leak a slow pipeline into every later test.
struct PhaseSleepGuard {
  explicit PhaseSleepGuard(const char* spec) {
    setenv("FSCT_TEST_PHASE_SLEEP", spec, 1);
  }
  ~PhaseSleepGuard() { unsetenv("FSCT_TEST_PHASE_SLEEP"); }
};

TEST(Serve, MetricsEndpointScrapesDuringAndAfterSessions) {
  // Hold each request in step 3 long enough for a mid-flight scrape.
  PhaseSleepGuard slow("s3:300");
  const std::string path = testing::TempDir() + "fsct_serve_metrics.sock";
  ServeOptions opt;
  opt.unix_path = path;
  opt.workers = 2;
  opt.http_port = 0;  // ephemeral loopback scrape listener
  opt.log = [](const std::string&) {};
  ServeServer srv(opt);
  const int port = srv.http_port();
  ASSERT_GT(port, 0);
  std::thread server([&] { srv.run(); });

  auto session = [&](const char* id) {
    const int fd = connect_unix(path);
    LineReader lr(fd);
    ASSERT_TRUE(write_line(fd, request_line(id, kS27, 1, false)));
    std::string line;
    while (lr.next(line)) {
      if (line.find("\"event\": \"result\"") != std::string::npos) break;
    }
    close(fd);
  };
  std::thread s0(session, "m0"), s1(session, "m1");

  // Scrape while at least one session is live; the accept thread answers
  // concurrently with both workers, which is exactly what TSan is watching.
  double during_requests = -1;
  for (int i = 0; i < 5000 && during_requests < 0; ++i) {
    const HttpResult m = scrape(port, "/metrics");
    ASSERT_EQ(m.status, 200);
    if (metric_value(m.body, "fsct_serve_active_sessions") >= 1) {
      during_requests = metric_value(m.body, "fsct_serve_requests_total");
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GE(during_requests, 1);  // the mid-flight scrape happened
  s0.join();
  s1.join();

  const HttpResult after = scrape(port, "/metrics");
  ASSERT_EQ(after.status, 200);
  // Counters are monotone across scrapes and settle at the exact totals.
  EXPECT_LE(during_requests, metric_value(after.body, "fsct_serve_requests_total"));
  EXPECT_EQ(metric_value(after.body, "fsct_serve_requests_total"), 2);
  EXPECT_EQ(metric_value(after.body, "fsct_serve_requests_ok_total"), 2);
  EXPECT_EQ(metric_value(after.body, "fsct_serve_active_sessions"), 0);
  // Queue, cache and latency series are all present; both finished requests
  // landed in every latency histogram's +Inf bucket.
  EXPECT_GE(metric_value(after.body, "fsct_serve_queue_depth"), 0);
  EXPECT_GE(metric_value(after.body, "fsct_serve_queue_highwater"), 0);
  // Two concurrent first requests for one circuit may both compile (the
  // model cache's documented race) — but every request resolved one way or
  // the other, and at least one was a genuine miss.
  const double m_miss =
      metric_value(after.body, "fsct_serve_model_cache_misses_total");
  const double m_hit =
      metric_value(after.body, "fsct_serve_model_cache_hits_total");
  EXPECT_GE(m_miss, 1);
  EXPECT_EQ(m_miss + m_hit, 2);
  // Both sessions ran with the result cache off: no lookups, no misses.
  EXPECT_EQ(metric_value(after.body, "fsct_serve_result_cache_misses_total"),
            0);
  for (const char* ph : {"queue", "compile", "pipeline", "serialize"}) {
    const std::string fam = std::string("fsct_serve_latency_") + ph + "_us";
    EXPECT_EQ(metric_value(after.body, fam + "_bucket{le=\"+Inf\"}"), 2)
        << fam;
    EXPECT_EQ(metric_value(after.body, fam + "_count"), 2) << fam;
  }
  // Session registries were folded in: pipeline counters appear cumulatively.
  EXPECT_GT(metric_value(after.body, "fsct_classify_faults_total"), 0);
  // One page, one terminator.
  ASSERT_GE(after.body.size(), 6u);
  EXPECT_EQ(after.body.substr(after.body.size() - 6), "# EOF\n");
  EXPECT_EQ(after.body.find("# EOF\n"), after.body.size() - 6);

  // The rest of the surface: liveness, readiness, status JSON, 404.
  EXPECT_EQ(scrape(port, "/healthz").status, 200);
  EXPECT_EQ(scrape(port, "/readyz").status, 200);
  const HttpResult st = scrape(port, "/statusz");
  EXPECT_EQ(st.status, 200);
  EXPECT_NO_THROW(JsonParser(st.body, "statusz").parse());  // well-formed
  EXPECT_NE(st.body.find("\"recent\""), std::string::npos) << st.body;
  EXPECT_EQ(scrape(port, "/nope").status, 404);

  srv.request_stop();
  server.join();
}

TEST(Serve, MetricsEndpointReadyzFlipsDuringDrain) {
  PhaseSleepGuard slow("s3:400");
  const std::string path = testing::TempDir() + "fsct_serve_drain.sock";
  ServeOptions opt;
  opt.unix_path = path;
  opt.workers = 1;
  opt.http_port = 0;
  opt.log = [](const std::string&) {};
  ServeServer srv(opt);
  const int port = srv.http_port();
  ASSERT_GT(port, 0);
  std::thread server([&] { srv.run(); });

  const int fd = connect_unix(path);
  ASSERT_TRUE(write_line(fd, request_line("drainer", kS27, 1, false)));
  // Wait for the worker to pick the request up, then start the drain while
  // it is still inside the pipeline's slow phase.
  for (int i = 0; i < 5000 && srv.stats().requests < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(srv.stats().requests, 1u);
  EXPECT_EQ(scrape(port, "/readyz").status, 200);
  srv.request_stop();

  // Readiness flips to 503 once run() enters its drain...
  bool flipped = false;
  for (int i = 0; i < 5000 && !flipped; ++i) {
    flipped = scrape(port, "/readyz").status == 503;
    if (!flipped) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(flipped);
  // ...liveness stays green, and scraping the draining daemon's full
  // metrics page and status JSON completes (no deadlock against the drain's
  // queue/cache/session locks).
  EXPECT_EQ(scrape(port, "/healthz").status, 200);
  const HttpResult m = scrape(port, "/metrics");
  EXPECT_EQ(m.status, 200);
  EXPECT_EQ(scrape(port, "/statusz").status, 200);

  // The in-flight request still completes and its response is flushed.
  LineReader lr(fd);
  std::string line, result;
  while (lr.next(line)) {
    if (line.find("\"event\": \"result\"") != std::string::npos) {
      result = line;
      break;
    }
  }
  close(fd);
  EXPECT_NE(result.find("\"status\": \"ok\""), std::string::npos) << result;
  server.join();

  // The scrape plane outlives run(): after the drain finishes the daemon
  // still answers, reporting itself drained, until the destructor runs.
  EXPECT_EQ(scrape(port, "/readyz").status, 503);
  EXPECT_EQ(metric_value(scrape(port, "/metrics").body, "fsct_serve_draining"),
            1);
}

// The HTTP head parser's rejection paths: wrong method, garbage request
// line, and a peer that closes mid-request-line (the LineReader's strict
// terminator mode) — none may wedge or kill the accept thread.
TEST(Serve, HttpListenerRejectsBadRequestsAndSurvivesEarlyClose) {
  ServeOptions opt = quiet_options();
  opt.http_port = 0;
  ServeServer srv(opt);
  const int port = srv.http_port();
  ASSERT_GT(port, 0);

  {  // hang up mid-request-line: no response owed, daemon unharmed
    const int fd = connect_tcp(port);
    ASSERT_TRUE(write_all(fd, "GET /metr", 9));
    close(fd);
  }
  {  // wrong method
    const int fd = connect_tcp(port);
    const std::string req = "POST /metrics HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(write_all(fd, req.data(), req.size()));
    std::string raw;
    char chunk[512];
    long r;
    while ((r = read_retry(fd, chunk, sizeof chunk)) > 0) {
      raw.append(chunk, static_cast<std::size_t>(r));
    }
    close(fd);
    EXPECT_EQ(raw.compare(0, 12, "HTTP/1.1 405"), 0) << raw;
  }
  {  // not HTTP at all
    const int fd = connect_tcp(port);
    const std::string req = "nonsense\r\n\r\n";
    ASSERT_TRUE(write_all(fd, req.data(), req.size()));
    std::string raw;
    char chunk[512];
    long r;
    while ((r = read_retry(fd, chunk, sizeof chunk)) > 0) {
      raw.append(chunk, static_cast<std::size_t>(r));
    }
    close(fd);
    EXPECT_EQ(raw.compare(0, 12, "HTTP/1.1 400"), 0) << raw;
  }
  // The listener is still alive and serving after all three abuses.
  EXPECT_EQ(scrape(port, "/healthz").status, 200);
}

// LineReader's two modes at EOF, and its cap/poisoning discipline — the
// contract the HTTP parser and the NDJSON reader both lean on.
TEST(Serve, LineReaderStrictModeAndCapPoisonTheStream) {
  auto feed = [](const std::string& bytes) {
    int p[2];
    EXPECT_EQ(pipe(p), 0);
    EXPECT_TRUE(write_all(p[1], bytes.data(), bytes.size()));
    close(p[1]);
    return p[0];  // read end, caller closes
  };

  {  // lenient (NDJSON) mode: a trailing fragment is still a line
    const int fd = feed("done\npartial");
    LineReader lr(fd);
    std::string line;
    ASSERT_TRUE(lr.next(line));
    EXPECT_EQ(line, "done");
    ASSERT_TRUE(lr.next(line));
    EXPECT_EQ(line, "partial");
    EXPECT_FALSE(lr.next(line));
    close(fd);
  }
  {  // strict (HTTP) mode: the unterminated fragment is rejected...
    const int fd = feed("done\npartial");
    LineReader lr(fd, LineReader::kMaxLine, /*require_terminator=*/true);
    std::string line;
    ASSERT_TRUE(lr.next(line));
    EXPECT_EQ(line, "done");
    EXPECT_FALSE(lr.next(line));
    EXPECT_FALSE(lr.next(line));  // ...and the stream stays dead
    close(fd);
  }
  {  // an unterminated line past the cap poisons the stream
    const int fd = feed("0123456789");  // 10 bytes, no '\n', cap of 4
    LineReader lr(fd, /*max_line=*/4);
    std::string line;
    EXPECT_FALSE(lr.next(line));
    EXPECT_FALSE(lr.next(line));
    close(fd);
  }
}

}  // namespace
}  // namespace fsct

#endif  // _WIN32
