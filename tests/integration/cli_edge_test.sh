#!/usr/bin/env bash
# CLI edge cases: bad numeric operands, missing operands, unknown options,
# malformed input files.  Every case must fail with exit code 2 and a
# specific message on stderr — never exit 0, never crash, never print the
# error to stdout.  Usage: cli_edge_test.sh <path-to-fsct>
set -u

FSCT=${1:?usage: cli_edge_test.sh <path-to-fsct>}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

# expect_fail <expected-exit> <stderr-pattern> -- <args...>
expect_fail() {
  local want_code=$1 pattern=$2
  shift 3
  local out err code
  out=$("$FSCT" "$@" 2>"$TMP/err")
  code=$?
  err=$(cat "$TMP/err")
  if [[ $code -ne $want_code ]]; then
    echo "FAIL: fsct $* -> exit $code, want $want_code"
    FAILURES=$((FAILURES + 1))
  elif ! grep -q "$pattern" "$TMP/err"; then
    echo "FAIL: fsct $* -> stderr missing /$pattern/: $err"
    FAILURES=$((FAILURES + 1))
  elif [[ -n "$out" && $want_code -eq 2 ]]; then
    echo "FAIL: fsct $* -> error case wrote to stdout: $out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: fsct $* -> $code, '$err'"
  fi
}

cat > "$TMP/good.bench" <<'EOF'
INPUT(a)
INPUT(b)
OUTPUT(g)
f = DFF(g)
g = AND(a, b)
EOF

# --- numeric operand validation ------------------------------------------
expect_fail 2 "invalid integer 'banana'" -- test "$TMP/good.bench" --jobs banana
expect_fail 2 "invalid integer '1x'"     -- test "$TMP/good.bench" --jobs 1x
expect_fail 2 "out of range"             -- test "$TMP/good.bench" --jobs -1
expect_fail 2 "out of range"             -- scan "$TMP/good.bench" --chains 0
expect_fail 2 "out of range"             -- scan "$TMP/good.bench" --partial -1
expect_fail 2 "out of range"             -- scan "$TMP/good.bench" --partial 1001
expect_fail 2 "out of range"             -- scan "$TMP/good.bench" --partial 99999999999999999999
expect_fail 2 "invalid integer"          -- replay x y --fault net two

# --- missing operands ------------------------------------------------------
expect_fail 2 "requires a value" -- test "$TMP/good.bench" --jobs
expect_fail 2 "requires a value" -- scan "$TMP/good.bench" -o
expect_fail 2 "requires a value" -- fuzz --seed
expect_fail 2 "missing <circuit.bench> operand" -- stats
expect_fail 2 "missing <circuit.bench> operand" -- replay prog.fsct

# --- unknown options / commands -------------------------------------------
expect_fail 2 "unknown option '--frobnicate'" -- test "$TMP/good.bench" --frobnicate
expect_fail 2 "unknown command" -- frobnicate
expect_fail 2 "unknown oracle 'bogus'" -- fuzz --iters 1 --oracles bogus

# --- missing / malformed files ---------------------------------------------
expect_fail 2 "cannot open" -- stats "$TMP/does_not_exist.bench"

cat > "$TMP/badgate.bench" <<'EOF'
INPUT(a)
OUTPUT(g)
g = FROB(a)
EOF
expect_fail 2 "line 3: unknown gate type 'FROB'" -- stats "$TMP/badgate.bench"

cat > "$TMP/dup.bench" <<'EOF'
INPUT(a)
INPUT(a)
OUTPUT(a)
EOF
expect_fail 2 "line 2: redefinition of 'a' (first defined at line 1)" -- stats "$TMP/dup.bench"

cat > "$TMP/dupgate.bench" <<'EOF'
INPUT(a)
OUTPUT(g)
g = NOT(a)
g = AND(a, a)
EOF
expect_fail 2 "line 4: redefinition of 'g'" -- stats "$TMP/dupgate.bench"

cat > "$TMP/undriven.bench" <<'EOF'
INPUT(a)
OUTPUT(ghost)
g = NOT(a)
EOF
expect_fail 2 "line 2: OUTPUT(ghost) references undefined signal" -- stats "$TMP/undriven.bench"

cat > "$TMP/undef_fanin.bench" <<'EOF'
INPUT(a)
OUTPUT(g)
g = AND(a, nosuch)
EOF
expect_fail 2 "line 3: undefined signal 'nosuch'" -- stats "$TMP/undef_fanin.bench"

cat > "$TMP/badmux.bench" <<'EOF'
INPUT(a)
OUTPUT(g)
g = MUX(a)
EOF
expect_fail 2 "line 3: bad fanin count" -- stats "$TMP/badmux.bench"

cat > "$TMP/badprog.fsct" <<'EOF'
FSCT-TEST 1
circuit c
inputs a b
observe g
cycles 12abc
EOF
expect_fail 2 "line 5: invalid cycle count '12abc'" -- replay "$TMP/badprog.fsct" "$TMP/good.bench"

# --- bench subcommand -------------------------------------------------------
expect_fail 2 "invalid label"            -- bench run s1488 --label "bad label"
expect_fail 2 "invalid label"            -- bench run s1488 --label "a/b"
expect_fail 2 "unknown bench subcommand" -- bench frobnicate
expect_fail 2 "missing <run|compare> operand" -- bench
expect_fail 2 "missing <old.json> operand"    -- bench compare
expect_fail 2 "missing <new.json> operand"    -- bench compare old.json
expect_fail 2 "invalid integer"          -- bench run --jobs 1,x
expect_fail 2 "invalid number"           -- bench compare a b --mad-k soft
expect_fail 2 "cannot open"              -- bench compare "$TMP/no.json" "$TMP/no.json"

cat > "$TMP/broken.json" <<'EOF'
{
  "schema": "fsct-bench-v2",
  "rows": [
    {"circuit": "s1488", oops}
  ]
}
EOF
expect_fail 2 "line 4:" -- bench compare "$TMP/broken.json" "$TMP/broken.json"

cat > "$TMP/otherschema.json" <<'EOF'
{
  "schema": "some-other-format",
  "rows": []
}
EOF
expect_fail 2 "line 2: unsupported bench schema" -- bench compare "$TMP/otherschema.json" "$TMP/otherschema.json"

cat > "$TMP/notbench.json" <<'EOF'
{
  "hello": "world"
}
EOF
expect_fail 2 "not a bench document" -- bench compare "$TMP/notbench.json" "$TMP/notbench.json"

# --- happy paths still work ------------------------------------------------
if ! "$FSCT" stats "$TMP/good.bench" >/dev/null 2>&1; then
  echo "FAIL: fsct stats on a good circuit should succeed"
  FAILURES=$((FAILURES + 1))
fi
if ! "$FSCT" fuzz --seed 1 --iters 3 -o "$TMP/fz" >/dev/null 2>&1; then
  echo "FAIL: fsct fuzz smoke should succeed"
  FAILURES=$((FAILURES + 1))
fi

if [[ $FAILURES -ne 0 ]]; then
  echo "$FAILURES case(s) failed"
  exit 1
fi
echo "all CLI edge cases passed"
