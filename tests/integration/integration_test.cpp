// Cross-module integration: TPI -> scan-mode model -> classification ->
// full pipeline, on real (s27) and generated circuits, including end-to-end
// verification that step-3 sequential-ATPG tests detect their faults on the
// unmodified circuit.
#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "core/reduced_atpg.h"
#include "core/test_export.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "scan/mux_scan.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Integration, S27FullFlow) {
  Netlist nl = iscas_s27();
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, {}, &stats);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  ASSERT_EQ(model.check(), "");
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_easy = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  EXPECT_GT(r.affecting(), 0u);
  EXPECT_EQ(r.easy_verified, r.easy);
  EXPECT_EQ(r.final_undetected(), 0u) << "s27 should be fully resolved";
}

TEST(Integration, TpiCircuitSurvivesBenchRoundTrip) {
  Netlist nl = iscas_s27();
  run_tpi(nl);
  const std::string text = write_bench_string(nl);
  const Netlist nl2 = read_bench_string(text, "rt");
  EXPECT_EQ(nl2.validate(), "");
  EXPECT_EQ(nl2.num_gates(), nl.num_gates());
  EXPECT_EQ(nl2.dffs().size(), nl.dffs().size());
}

TEST(Integration, Step3TestsVerifiedEndToEnd) {
  // Build a circuit, push every hard fault through the reduced-model ATPG
  // directly, and check each Detected result against the real circuit.
  RandomCircuitSpec spec;
  spec.num_gates = 220;
  spec.num_ffs = 16;
  spec.num_pis = 7;
  spec.num_pos = 5;
  spec.seed = 777;
  Netlist nl = make_random_sequential(spec);
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  ChainFaultClassifier cls(model);
  const auto faults = collapsed_fault_list(nl);

  ReducedCircuitBuilder builder(model);
  std::vector<NodeId> observe = nl.outputs();
  for (NodeId so : model.scan_outs()) observe.push_back(so);
  SeqFaultSim sim(lv, observe);

  int tried = 0, detected = 0, verified = 0;
  for (const Fault& f : faults) {
    const ChainFaultInfo info = cls.classify(f);
    if (info.category != ChainFaultCategory::Hard) continue;
    if (++tried > 12) break;  // keep the test fast
    AtpgGroup g;
    g.kind = 1;
    g.fault_indices = {0};
    g.window = make_fault_window(0, info).chains;
    const ReducedModel rm = builder.build(g, std::span(&f, 1));
    const auto sites = rm.um.map_fault(f);
    if (sites.empty()) continue;
    const AtpgResult r = rm.podem->generate(sites);
    if (r.status != AtpgStatus::Detected) continue;
    ++detected;
    const SeqTest t = builder.extract_test(rm, r);
    const TestSequence seq =
        builder.realize(t, model.max_chain_length() + 2);
    const Fault one[] = {f};
    if (sim.run_serial(seq, one).detect_cycle[0] >= 0) ++verified;
  }
  EXPECT_GT(detected, 0);
  // Sequential-ATPG answers must be real on the actual circuit.
  EXPECT_GE(verified * 10, detected * 8)
      << verified << "/" << detected << " verified";
}

TEST(Integration, PipelineOnMidSizeCircuit) {
  RandomCircuitSpec spec;
  spec.num_gates = 650;
  spec.num_ffs = 64;
  spec.num_pis = 16;
  spec.num_pos = 10;
  spec.seed = 4242;
  Netlist nl = make_random_sequential(spec);
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  const PipelineResult r = run_fsct_pipeline(model, faults);
  // Shape assertions in the spirit of the paper's totals:
  // a large minority of faults touch the chain; few are hard; almost none
  // stay undetected.
  EXPECT_GT(r.affecting(), r.total_faults / 20);
  EXPECT_LT(r.hard, r.affecting());
  EXPECT_LE(r.final_undetected() * 20, r.affecting());
}

TEST(Integration, MuxScanBaselineAlternatingCatchesEverythingAffecting) {
  // With conventional MUX scan (dedicated paths), every chain-affecting
  // fault is category 1 — the motivation for Figure 2.
  Netlist nl = small_counter();
  const ScanDesign d = insert_mux_scan(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  ChainFaultClassifier cls(model);
  const auto faults = collapsed_fault_list(nl);
  for (const Fault& f : faults) {
    if (cls.classify(f).category != ChainFaultCategory::Hard) continue;
    // The only functional logic inside a MUX-scan chain is the scan-enable:
    // every category-2 fault must involve the scan_mode signal.
    const NodeId seen = (f.pin >= 0)
                            ? nl.fanins(f.node)[static_cast<std::size_t>(
                                  f.pin)]
                            : f.node;
    EXPECT_EQ(seen, d.scan_mode)
        << fault_name(nl, f) << " is category-2 but unrelated to scan_mode";
  }
}

TEST(Integration, ChainTestProgramScreensEveryCoveredFault) {
  // The exported tester program (flush + step-2 vectors + verified step-3
  // sequences) must fail on *every* fault the pipeline claims covered —
  // 3-valued detection from the all-X state is monotone under concatenation,
  // so this is a hard guarantee, not a statistic.
  RandomCircuitSpec spec;
  spec.num_gates = 240;
  spec.num_ffs = 18;
  spec.num_pis = 8;
  spec.num_pos = 5;
  spec.seed = 31337;
  Netlist nl = make_random_sequential(spec);
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  PipelineOptions opt;
  opt.verify_seq = true;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);

  const TestProgram prog = make_chain_test_program(model, r);
  EXPECT_EQ(run_test_program(lv, prog), 0u) << "healthy device must pass";

  std::size_t covered = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultOutcome o = r.outcome[i];
    if (o != FaultOutcome::EasyAlternating &&
        o != FaultOutcome::DetectedFlush && o != FaultOutcome::DetectedComb &&
        o != FaultOutcome::DetectedSeq && o != FaultOutcome::DetectedFinal) {
      continue;
    }
    ++covered;
    EXPECT_GT(run_test_program(lv, prog, &faults[i]), 0u)
        << fault_name(nl, faults[i]) << " claimed covered but passes";
  }
  EXPECT_GT(covered, 0u);
}

}  // namespace
}  // namespace fsct
