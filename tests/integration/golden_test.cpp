// Golden regression pins: exact end-to-end numbers on fixed inputs.  These
// WILL move when algorithms are intentionally changed — update them together
// with a DESIGN.md note; unexpected movement means a behavioural regression.
#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/paper_examples.h"
#include "bench_circuits/suite.h"
#include "core/pipeline.h"
#include "fault/fault.h"
#include "netlist/stats.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Golden, S27TpiShape) {
  Netlist nl = iscas_s27();
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, {}, &stats);
  EXPECT_EQ(stats.functional_segments, 1);
  EXPECT_EQ(stats.mux_segments, 2);
  EXPECT_EQ(stats.test_points, 1);
  ASSERT_EQ(d.chains.size(), 1u);
  EXPECT_EQ(d.chains[0].length(), 3u);
}

TEST(Golden, S27PipelineNumbers) {
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  EXPECT_EQ(faults.size(), 46u);

  PipelineOptions opt;
  opt.verify_easy = true;
  opt.comb_time_limit_ms = 0;  // keep the run fully deterministic
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  EXPECT_EQ(r.easy, 11u);
  EXPECT_EQ(r.hard, 4u);
  EXPECT_EQ(r.easy_verified, 11u);
  // With dominance on (the default), the alternating-flush credit pre-pass
  // already proves all four hard faults, so step 2 never fires PODEM.
  EXPECT_EQ(r.dominance_targets, 4u);
  EXPECT_EQ(r.flush_detected, 4u);
  EXPECT_EQ(r.s2_detected, 0u);
  EXPECT_EQ(r.s3_undetected, 0u);

  // --no-dominance restores the historical behaviour exactly.
  opt.dominance = false;
  const PipelineResult p = run_fsct_pipeline(model, faults, opt);
  EXPECT_EQ(p.dominance_targets, 0u);
  EXPECT_EQ(p.flush_detected, 0u);
  EXPECT_EQ(p.s2_detected, 4u);
  EXPECT_EQ(p.s3_undetected, 0u);
}

// Conformance table: per-circuit fault-list sizes at each collapsing level.
// Uncollapsed = every pin/output stuck-at pair; equivalence = the repo's
// structural equivalence classes; dominance = PODEM targets after
// collapse_dominant().  Pure list construction — no simulation — so the whole
// suite is cheap to pin.
TEST(Golden, FaultCollapsingConformanceTable) {
  struct Row {
    const char* name;
    std::size_t uncollapsed, equivalence, dominance;
  };
  const Row kTable[] = {
      {"s1423", 3762, 2270, 1850},    {"s1488", 3702, 2372, 1914},
      {"s1494", 3662, 2336, 1866},    {"s3330", 10182, 6297, 5081},
      {"s4863", 13186, 8265, 6655},   {"s5378", 15740, 9757, 7868},
      {"s9234", 31510, 19726, 15801}, {"s13207", 45150, 27732, 22454},
      {"s15850", 55242, 34267, 27444}, {"s35932", 91168, 55176, 44914},
      {"s38417", 125004, 76697, 61908}, {"s38584", 108792, 67070, 54187},
  };
  {
    const Netlist nl = iscas_s27();
    const auto col = collapsed_fault_list(nl);
    EXPECT_EQ(all_faults(nl).size(), 52u);
    EXPECT_EQ(col.size(), 26u);
    EXPECT_EQ(collapse_dominant(nl, col).targets.size(), 21u);
  }
  for (const Row& row : kTable) {
    const Netlist nl = build_suite_circuit(suite_entry(row.name));
    const auto col = collapsed_fault_list(nl);
    const DominanceInfo di = collapse_dominant(nl, col);
    EXPECT_EQ(all_faults(nl).size(), row.uncollapsed) << row.name;
    EXPECT_EQ(col.size(), row.equivalence) << row.name;
    EXPECT_EQ(di.targets.size(), row.dominance) << row.name;
    // Expansion-table conformance: rep is total, every representative is a
    // kept fixpoint, and the kept set is exactly the distinct representatives.
    ASSERT_EQ(di.rep.size(), col.size()) << row.name;
    std::vector<char> is_target(col.size(), 0);
    for (std::size_t t : di.targets) is_target[t] = 1;
    for (std::size_t i = 0; i < col.size(); ++i) {
      const std::size_t r = di.rep[i];
      ASSERT_LT(r, col.size()) << row.name;
      EXPECT_EQ(di.rep[r], r) << row.name << " fault " << i;
      EXPECT_TRUE(is_target[r]) << row.name << " fault " << i;
    }
    EXPECT_TRUE(std::is_sorted(di.targets.begin(), di.targets.end()))
        << row.name;
  }
}

// End-to-end coverage pins for the fast suite circuits (wall < ~100 ms each;
// the larger circuits are covered statistically by the bench harness).
TEST(Golden, SuiteCoverageConformance) {
  struct Pin {
    const char* name;
    std::size_t easy, hard, dom_targets, flush, s2_det, s2_undetectable,
        s3_det, s3_undetected;
  };
  const Pin kPins[] = {
      {"s1488", 49, 42, 27, 21, 20, 1, 0, 0},
      {"s1494", 40, 10, 8, 2, 1, 5, 2, 0},
  };
  for (const Pin& p : kPins) {
    const SuiteEntry e = suite_entry(p.name);
    Netlist nl = build_suite_circuit(e);
    TpiOptions topt;
    topt.num_chains = e.chains;
    const ScanDesign d = run_tpi(nl, topt);
    const Levelizer lv(nl);
    const ScanModeModel model(lv, d);
    const auto faults = collapsed_fault_list(nl);
    PipelineOptions opt;
    opt.verify_easy = true;
    opt.comb_time_limit_ms = 0;
    opt.seq_time_limit_ms = 0;
    opt.final_time_limit_ms = 0;
    const PipelineResult r = run_fsct_pipeline(model, faults, opt);
    EXPECT_EQ(r.easy, p.easy) << p.name;
    EXPECT_EQ(r.easy_verified, p.easy) << p.name;
    EXPECT_EQ(r.hard, p.hard) << p.name;
    EXPECT_EQ(r.dominance_targets, p.dom_targets) << p.name;
    EXPECT_EQ(r.flush_detected, p.flush) << p.name;
    EXPECT_EQ(r.s2_detected, p.s2_det) << p.name;
    EXPECT_EQ(r.s2_undetectable, p.s2_undetectable) << p.name;
    EXPECT_EQ(r.s3_detected, p.s3_det) << p.name;
    EXPECT_EQ(r.s3_undetected, p.s3_undetected) << p.name;
  }
}

TEST(Golden, Figure2Model) {
  ExampleDesign e = paper_figure2();
  const NetlistStats s = compute_stats(e.nl);
  EXPECT_EQ(s.gates, 4u);
  EXPECT_EQ(s.ffs, 6u);
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.side_nets().size(), 2u);  // en and b
}

TEST(Golden, S27Stats) {
  const NetlistStats s = compute_stats(iscas_s27());
  EXPECT_EQ(s.nodes, 17u);
  EXPECT_EQ(s.max_depth, 6);
  EXPECT_EQ(s.max_fanout, 3u);
}

}  // namespace
}  // namespace fsct
