// Golden regression pins: exact end-to-end numbers on fixed inputs.  These
// WILL move when algorithms are intentionally changed — update them together
// with a DESIGN.md note; unexpected movement means a behavioural regression.
#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "core/pipeline.h"
#include "netlist/stats.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

TEST(Golden, S27TpiShape) {
  Netlist nl = iscas_s27();
  TpiStats stats;
  const ScanDesign d = run_tpi(nl, {}, &stats);
  EXPECT_EQ(stats.functional_segments, 1);
  EXPECT_EQ(stats.mux_segments, 2);
  EXPECT_EQ(stats.test_points, 1);
  ASSERT_EQ(d.chains.size(), 1u);
  EXPECT_EQ(d.chains[0].length(), 3u);
}

TEST(Golden, S27PipelineNumbers) {
  Netlist nl = iscas_s27();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel model(lv, d);
  const auto faults = collapsed_fault_list(nl);
  EXPECT_EQ(faults.size(), 46u);

  PipelineOptions opt;
  opt.verify_easy = true;
  opt.comb_time_limit_ms = 0;  // keep the run fully deterministic
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  const PipelineResult r = run_fsct_pipeline(model, faults, opt);
  EXPECT_EQ(r.easy, 11u);
  EXPECT_EQ(r.hard, 4u);
  EXPECT_EQ(r.easy_verified, 11u);
  EXPECT_EQ(r.s2_detected, 4u);
  EXPECT_EQ(r.s3_undetected, 0u);
}

TEST(Golden, Figure2Model) {
  ExampleDesign e = paper_figure2();
  const NetlistStats s = compute_stats(e.nl);
  EXPECT_EQ(s.gates, 4u);
  EXPECT_EQ(s.ffs, 6u);
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.side_nets().size(), 2u);  // en and b
}

TEST(Golden, S27Stats) {
  const NetlistStats s = compute_stats(iscas_s27());
  EXPECT_EQ(s.nodes, 17u);
  EXPECT_EQ(s.max_depth, 6);
  EXPECT_EQ(s.max_fanout, 3u);
}

}  // namespace
}  // namespace fsct
