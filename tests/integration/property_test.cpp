// Property-style sweeps over generated circuits:
//  P1  category-3 faults never change the scan-out stream,
//  P2  category-1 faults are always caught by the alternating flush,
//  P3  the TPI shift invariant holds for arbitrary scan-in data,
//  P4  combinationally-untestable verdicts survive a random-pattern attack.
#include <gtest/gtest.h>

#include <random>

#include "atpg/podem.h"
#include "atpg/unroll.h"
#include "bench_circuits/generator.h"
#include "core/classify.h"
#include "fault/comb_fault_sim.h"
#include "fault/seq_fault_sim.h"
#include "netlist/levelize.h"
#include "scan/scan_sequences.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

struct World {
  Netlist nl;
  ScanDesign design;
  Levelizer lv;
  ScanModeModel model;
  explicit World(std::uint64_t seed, int gates = 260, int ffs = 20)
      : nl(make(seed, gates, ffs)),
        design(run_tpi(nl)),
        lv(nl),
        model(lv, design) {}
  static Netlist make(std::uint64_t seed, int gates, int ffs) {
    RandomCircuitSpec spec;
    spec.num_gates = gates;
    spec.num_ffs = ffs;
    spec.num_pis = 8;
    spec.num_pos = 6;
    spec.seed = seed;
    return make_random_sequential(spec);
  }
};

TestSequence random_scan_stream(const World& w, std::size_t cycles,
                                std::uint64_t seed) {
  const ScanSequenceBuilder sb(w.nl, w.design);
  std::mt19937_64 rng(seed);
  TestSequence seq;
  for (std::size_t t = 0; t < cycles; ++t) {
    std::vector<Val> v = sb.base_vector(k0);
    for (const ScanChain& c : w.design.chains) {
      for (std::size_t i = 0; i < w.nl.inputs().size(); ++i) {
        if (w.nl.inputs()[i] == c.scan_in) {
          v[i] = (rng() & 1) ? k1 : k0;
        }
      }
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeed, P1_Category3FaultsNeverTouchScanOut) {
  World w(GetParam());
  ChainFaultClassifier cls(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  std::vector<Fault> cat3;
  for (const Fault& f : faults) {
    if (cls.classify(f).category == ChainFaultCategory::NotAffecting) {
      cat3.push_back(f);
    }
  }
  ASSERT_FALSE(cat3.empty());
  SeqFaultSim sim(w.lv, w.model.scan_outs());  // scan-outs only, not POs
  const TestSequence seq = random_scan_stream(w, 80, GetParam() * 3 + 1);
  const auto r = sim.run(seq, cat3);
  for (std::size_t i = 0; i < cat3.size(); ++i) {
    EXPECT_EQ(r.detect_cycle[i], -1)
        << fault_name(w.nl, cat3[i])
        << " classified category-3 but corrupted the scan-out";
  }
}

TEST_P(PropertySeed, P2_Category1FaultsCaughtByAlternatingFlush) {
  World w(GetParam());
  ChainFaultClassifier cls(w.model);
  const auto faults = collapsed_fault_list(w.nl);
  std::vector<Fault> cat1;
  for (const Fault& f : faults) {
    if (cls.classify(f).category == ChainFaultCategory::Easy) {
      cat1.push_back(f);
    }
  }
  ASSERT_FALSE(cat1.empty());
  const ScanSequenceBuilder sb(w.nl, w.design);
  std::vector<NodeId> observe = w.nl.outputs();
  for (NodeId so : w.model.scan_outs()) observe.push_back(so);
  SeqFaultSim sim(w.lv, observe);
  const auto r =
      sim.run(sb.alternating(2 * w.model.max_chain_length() + 8), cat1);
  for (std::size_t i = 0; i < cat1.size(); ++i) {
    EXPECT_GE(r.detect_cycle[i], 0)
        << fault_name(w.nl, cat1[i]) << " escaped the alternating sequence";
  }
}

TEST_P(PropertySeed, P3_ShiftInvariantUnderRandomData) {
  World w(GetParam());
  SeqSim sim(w.lv);
  sim.reset(k0);
  std::vector<int> ff_index(w.nl.size(), -1);
  for (std::size_t i = 0; i < w.nl.dffs().size(); ++i) {
    ff_index[w.nl.dffs()[i]] = static_cast<int>(i);
  }
  const TestSequence seq = random_scan_stream(w, 60, GetParam() + 5);
  for (const auto& v : seq) {
    const std::vector<Val> before = sim.state();
    sim.step(v);
    for (const ScanChain& c : w.design.chains) {
      // Scan-in value of this cycle:
      Val sin = k0;
      for (std::size_t i = 0; i < w.nl.inputs().size(); ++i) {
        if (w.nl.inputs()[i] == c.scan_in) sin = v[i];
      }
      for (std::size_t k = 0; k < c.length(); ++k) {
        const Val prev =
            (k == 0) ? sin
                     : before[static_cast<std::size_t>(
                           ff_index[c.ffs[k - 1]])];
        const Val want = c.segments[k].inverting ? !prev : prev;
        ASSERT_EQ(
            sim.state()[static_cast<std::size_t>(ff_index[c.ffs[k]])], want);
      }
    }
  }
}

TEST_P(PropertySeed, P4_UntestableVerdictsSurviveRandomAttack) {
  World w(GetParam(), 180, 12);
  // Combinational scan-mode model, all state controllable/observable.
  UnrollSpec spec;
  spec.base = &w.nl;
  spec.frames = 1;
  spec.fixed_pis = w.design.pi_constraints;
  spec.controllable_state.assign(w.nl.dffs().size(), 1);
  spec.observable_ff.assign(w.nl.dffs().size(), 1);
  const UnrolledModel um = unroll(spec);
  Levelizer ulv(um.nl);
  Podem podem(ulv, um.controllable, um.observe, AtpgOptions{2000});

  std::vector<NodeId> observe = w.nl.outputs();
  for (NodeId ff : w.nl.dffs()) observe.push_back(ff);
  CombFaultSim ppsfp(w.lv, observe);

  const auto faults = collapsed_fault_list(w.nl);
  std::vector<Fault> untestable;
  for (std::size_t i = 0; i < faults.size() && untestable.size() < 40; i += 3) {
    const AtpgResult r = podem.generate(um.map_fault(faults[i]));
    if (r.status == AtpgStatus::Untestable) untestable.push_back(faults[i]);
  }
  if (untestable.empty()) GTEST_SKIP() << "no untestable faults sampled";

  // 512 random scan-mode patterns must not detect any of them.
  std::mt19937_64 rng(GetParam() * 7 + 3);
  std::vector<CombPattern> pats(512);
  const ScanSequenceBuilder sb(w.nl, w.design);
  for (auto& p : pats) {
    p.resize(w.nl.inputs().size() + w.nl.dffs().size());
    for (auto& x : p) x = (rng() & 1) ? k1 : k0;
    // Respect the scan-mode constraints.
    const auto base = sb.base_vector(k0);
    for (std::size_t i = 0; i < w.nl.inputs().size(); ++i) {
      if (w.design.is_constrained(w.nl.inputs()[i])) p[i] = base[i];
    }
  }
  const auto r = ppsfp.run(pats, untestable);
  for (std::size_t i = 0; i < untestable.size(); ++i) {
    EXPECT_EQ(r.detect_pattern[i], -1)
        << fault_name(w.nl, untestable[i])
        << " declared untestable but a random pattern detects it";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Values(1001ull, 2002ull, 3003ull,
                                           4004ull, 5005ull));

}  // namespace
}  // namespace fsct
