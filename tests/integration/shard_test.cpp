// The sharded multi-process screening layer (src/shard, DESIGN.md §5l), held
// to its three contracts:
//
//   determinism   — the normalized run report is byte-identical to a
//                   single-process run at every shard count × job count, on
//                   three suite circuits (the matrix tests),
//   crash safety  — SIGKILLing a worker mid-run is detected promptly and
//                   reported as a clean ShardError (never a hang, never a
//                   partial report), and a --resume from the last checkpoint
//                   completes byte-identically,
//   checkpoint    — the fsct-ckpt-v1 format round-trips, rejects truncated /
//                   corrupt / foreign files with line-anchored errors, and a
//                   run stopped at ANY safe point resumes to the bitwise
//                   single-process result (the every-interval sweep).
//
// The fuzz oracle O8 (`shard`) rides on the same runner; its registration
// error path is checked first, before any test registers the hook.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_circuits/generator.h"
#include "bench_circuits/suite.h"
#include "core/obs.h"
#include "core/pipeline.h"
#include "core/pipeline_exec.h"
#include "core/selfcheck.h"
#include "scan/tpi.h"
#include "serve/serve.h"
#include "shard/checkpoint.h"
#include "shard/shard.h"

namespace fsct {
namespace {

// A compiled circuit whose members never move: the Levelizer and the model
// hold references into the netlist, so the world lives on the heap.
struct World {
  Netlist nl;
  ScanDesign design;
  std::unique_ptr<Levelizer> lv;
  std::unique_ptr<ScanModeModel> model;
  std::vector<Fault> faults;
};

std::unique_ptr<World> compile_world(Netlist nl, int chains) {
  auto w = std::make_unique<World>();
  w->nl = std::move(nl);
  TpiOptions topt;
  topt.num_chains = chains;
  w->design = run_tpi(w->nl, topt);
  w->lv = std::make_unique<Levelizer>(w->nl);
  w->model = std::make_unique<ScanModeModel>(*w->lv, w->design);
  w->faults = collapsed_fault_list(w->nl);
  return w;
}

std::unique_ptr<World> suite_world(const std::string& name) {
  const SuiteEntry& e = suite_entry(name);
  return compile_world(build_suite_circuit(e), e.chains);
}

std::unique_ptr<World> small_world(std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.num_gates = 50;
  spec.num_ffs = 4;
  spec.num_pis = 6;
  spec.num_pos = 4;
  spec.seed = seed;
  return compile_world(make_random_sequential(spec), 1);
}

// Wall-clock ATPG budgets are the one nondeterministic input; every
// determinism assertion in this file runs with them disabled.
PipelineOptions base_opt(int jobs) {
  PipelineOptions opt;
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  opt.verify_easy = true;
  opt.jobs = jobs;
  return opt;
}

std::string report_of(const ObsRegistry& reg, const PipelineResult& r) {
  std::ostringstream os;
  reg.write_run_report(os, r);
  return normalized_report(os.str());
}

std::string ckpt_path(const char* leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

// ---- fuzz oracle O8 --------------------------------------------------------
// Declared first: gtest runs same-suite tests in definition order, and this
// one must observe the process BEFORE any other test registers the hook.

TEST(Shard, OracleIsLoudWhenUnregistered) {
  RandomCircuitSpec spec;
  spec.num_gates = 25;
  spec.num_ffs = 3;
  spec.seed = 11;
  SelfcheckConfig cfg;
  cfg.oracles = kOracleShard;
  cfg.jobs = 1;
  const std::string d = selfcheck_circuit(make_random_sequential(spec), cfg);
  EXPECT_NE(d.find("no sharded runner is registered"), std::string::npos) << d;
}

TEST(Shard, OracleShardIsOptInByName) {
  // `all` stays the in-process set: a default fuzz run must never fork.
  EXPECT_EQ(kOracleAll & kOracleShard, 0u);
  EXPECT_EQ(parse_oracle_mask("all") & kOracleShard, 0u);
  EXPECT_EQ(parse_oracle_mask("shard"), kOracleShard);
  EXPECT_STREQ(oracle_name(7), "shard");
}

TEST(Shard, OracleFuzzFindsNoDisagreements) {
  register_shard_oracle();
  FuzzOptions fo;
  fo.seed = 20260808;
  fo.iterations = 6;
  fo.oracles = kOracleShard;
  fo.jobs = 2;
  fo.max_gates = 40;
  fo.max_ffs = 5;
  fo.parser_stress = false;
  fo.shrink = false;  // a failure here is reported, not minimized
  const FuzzReport rep = run_fuzz(fo);
  EXPECT_GT(rep.oracle_runs[7], 0u);
  for (const FuzzFailure& f : rep.failures) {
    ADD_FAILURE() << "iteration " << f.iteration << ": " << f.diagnostic
                  << "\nrepro: " << f.repro;
  }
}

// ---- determinism matrix ----------------------------------------------------
// shards {1,2,3,7} × jobs {1,4}: every cell's PipelineResult diffs empty
// against the same-jobs single-process run, and the normalized run report is
// byte-identical (counters included — worker deltas must merge to the exact
// single-process totals).

void run_matrix(const std::string& circuit) {
  const std::unique_ptr<World> w = suite_world(circuit);
  for (int jobs : {1, 4}) {
    ObsRegistry reg;
    PipelineOptions opt = base_opt(jobs);
    opt.obs = &reg;
    const PipelineResult single = run_fsct_pipeline(*w->model, w->faults, opt);
    const std::string want = report_of(reg, single);
    for (int shards : {1, 2, 3, 7}) {
      ObsRegistry sreg;
      PipelineOptions sopt = base_opt(jobs);
      sopt.obs = &sreg;
      ShardOptions so;
      so.shards = shards;
      const PipelineResult sharded =
          run_sharded_pipeline(*w->model, w->faults, sopt, so);
      EXPECT_EQ(diff_pipeline_results(single, sharded), "")
          << circuit << " shards=" << shards << " jobs=" << jobs;
      EXPECT_EQ(report_of(sreg, sharded), want)
          << circuit << " shards=" << shards << " jobs=" << jobs
          << ": normalized report differs from single-process";
    }
  }
}

TEST(Shard, MatrixIdenticalS1423) { run_matrix("s1423"); }
TEST(Shard, MatrixIdenticalS1488) { run_matrix("s1488"); }
TEST(Shard, MatrixIdenticalS1494) { run_matrix("s1494"); }

// ---- crash injection -------------------------------------------------------

TEST(Shard, KilledWorkerIsDetectedAndRunResumes) {
  const std::unique_ptr<World> w = suite_world("s1423");
  const std::string ck = ckpt_path("kill.ckpt");
  std::filesystem::remove(ck);

  ObsRegistry breg;
  PipelineOptions bopt = base_opt(2);
  bopt.obs = &breg;
  const PipelineResult single = run_fsct_pipeline(*w->model, w->faults, bopt);
  const std::string want = report_of(breg, single);

  // Each worker dwells 400ms in every step-3 group command: a wide window to
  // SIGKILL one mid-item.  The env var is captured by the children at fork,
  // so clearing it right after construction keeps the parent (and the later
  // resume run) full speed.
  ::setenv("FSCT_TEST_PHASE_SLEEP", "shard.group:400", 1);
  ObsRegistry kreg;
  PipelineOptions kopt = base_opt(2);
  kopt.obs = &kreg;
  ShardOptions so;
  so.shards = 3;
  so.checkpoint_path = ck;
  so.checkpoint_interval_ms = 0;  // every safe point
  ShardRunner runner(*w->model, w->faults, kopt, so);
  ::unsetenv("FSCT_TEST_PHASE_SLEEP");

  const std::vector<pid_t> pids = runner.worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  // Kill a worker once the checkpoint shows the group phase running (i.e.
  // the victim is asleep inside a group command); after 30s give up waiting
  // and kill anyway — detection must be clean from any phase.
  std::thread killer([&] {
    for (int i = 0; i < 600; ++i) {
      std::ifstream in(ck);
      std::string head;
      std::getline(in, head);
      if (head.find("\"phase\":\"s3.groups\"") != std::string::npos) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pids[0], SIGKILL);
  });
  try {
    runner.run();
    ADD_FAILURE() << "run() completed although a worker was SIGKILLed";
  } catch (const ShardError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("killed by signal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("resume"), std::string::npos) << msg;
  }
  killer.join();
  ASSERT_TRUE(std::filesystem::exists(ck));

  // Resume from the last checkpoint: the continued run must finish with the
  // byte-identical single-process report.
  ObsRegistry rreg;
  PipelineOptions ropt = base_opt(2);
  ropt.obs = &rreg;
  ShardOptions ro;
  ro.shards = 3;
  ro.resume_path = ck;
  const PipelineResult resumed =
      run_sharded_pipeline(*w->model, w->faults, ropt, ro);
  EXPECT_EQ(diff_pipeline_results(single, resumed), "");
  EXPECT_EQ(report_of(rreg, resumed), want);
}

// ---- checkpoint format -----------------------------------------------------

CheckpointData sample_checkpoint() {
  CheckpointData d;
  d.hash = 0xdeadbeefcafef00dull;
  d.resume.phase = PipelinePhase::S3Groups;
  d.resume.podem_next = 2;
  PipelineResult& r = d.resume.partial;
  r.total_faults = 3;
  r.easy = 1;
  r.hard = 2;
  r.outcome = {FaultOutcome::EasyAlternating, FaultOutcome::NotAffecting,
               FaultOutcome::DetectedComb};
  r.info.resize(3);
  r.info[0].category = ChainFaultCategory::Easy;
  r.info[0].locations.push_back(ChainLocation{0, 1});
  r.info[2].category = ChainFaultCategory::Hard;
  r.info[2].multi_chain = true;
  r.info[2].locations.push_back(ChainLocation{0, 2});
  r.info[2].locations.push_back(ChainLocation{1, 0});
  r.vectors.push_back(ScanVector{{Val::One, Val::Zero}, {Val::X, Val::One}});
  r.detection_curve = {1};
  r.s3_sequences.push_back(TestSequence{{Val::One, Val::X}});
  r.s3_sequence_fault = {2};
  GroupOutcome go;
  go.detected = {2};
  go.seqs.push_back(TestSequence{{Val::Zero, Val::One}});
  go.unverified = 1;
  d.resume.groups_done.emplace(0, std::move(go));
  FinalOutcome fo;
  fo.verdict = FinalVerdict::Detected;
  fo.seq = TestSequence{{Val::One, Val::One}};
  d.resume.finals_done.emplace(2, std::move(fo));
  d.counters.emplace_back("fsct_classify_faults_total", 3);
  CheckpointData::HistState hs;
  hs.name = "fsct_podem_backtracks";
  hs.sum = 12;
  hs.buckets = {1, 0, 2};
  d.hists.push_back(std::move(hs));
  d.attr.push_back(CheckpointData::AttrCell{2, "podem_backtracks", 7});
  return d;
}

TEST(Shard, CheckpointRoundTrips) {
  const CheckpointData a = sample_checkpoint();
  const std::string text = serialize_checkpoint(a);
  const CheckpointData b = parse_checkpoint(text, "mem");
  EXPECT_EQ(serialize_checkpoint(b), text);
  EXPECT_EQ(b.hash, a.hash);
  EXPECT_EQ(b.resume.phase, PipelinePhase::S3Groups);
  EXPECT_EQ(b.resume.podem_next, 2u);
  EXPECT_EQ(b.resume.partial.outcome, a.resume.partial.outcome);
  EXPECT_EQ(b.resume.partial.vectors, a.resume.partial.vectors);
  EXPECT_EQ(b.resume.partial.s3_sequences, a.resume.partial.s3_sequences);
  ASSERT_EQ(b.resume.groups_done.size(), 1u);
  EXPECT_EQ(b.resume.groups_done.at(0).detected, std::vector<std::size_t>{2});
  ASSERT_EQ(b.resume.finals_done.size(), 1u);
  EXPECT_EQ(b.resume.finals_done.at(2).verdict, FinalVerdict::Detected);
  EXPECT_EQ(b.counters, a.counters);

  // And the on-disk writer is atomic + re-readable.
  const std::string path = ckpt_path("roundtrip.ckpt");
  write_checkpoint_atomic(path, a);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(serialize_checkpoint(read_checkpoint(path)), text);
}

std::string parse_error(const std::string& text) {
  try {
    parse_checkpoint(text, "ckpt");
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(Shard, CheckpointRejectsTamperedFiles) {
  const std::string good = serialize_checkpoint(sample_checkpoint());
  ASSERT_EQ(parse_error(good), "");
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < good.size();) {
    const std::size_t nl = good.find('\n', pos);
    lines.push_back(good.substr(pos, nl - pos));
    pos = nl + 1;
  }
  const auto join = [&](std::size_t skip_from, std::size_t skip_to) {
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i >= skip_from && i < skip_to) continue;
      out += lines[i];
      out += '\n';
    }
    return out;
  };

  // Truncated: sentinel gone.
  EXPECT_NE(parse_error(join(lines.size() - 1, lines.size()))
                .find("truncated: missing end sentinel"),
            std::string::npos);
  // Truncated: a whole section line missing — the sentinel count catches it,
  // naming the file and the sentinel's line.
  {
    const std::string e = parse_error(join(4, 5));
    EXPECT_NE(e.find("end sentinel expects"), std::string::npos) << e;
    EXPECT_NE(e.find("ckpt: line"), std::string::npos) << e;
  }
  // Corrupt JSON mid-file: the error is anchored to that line.
  {
    std::vector<std::string> bad = lines;
    bad[2] = "{\"section\":\"info\",\"data\":[[";
    std::string text;
    for (const std::string& l : bad) text += l + "\n";
    const std::string e = parse_error(text);
    EXPECT_NE(e.find("ckpt: line 3:"), std::string::npos) << e;
  }
  // Bad outcome digit, anchored to the outcome line.
  {
    std::vector<std::string> bad = lines;
    const std::size_t at = bad[1].find("\"data\":\"");
    bad[1][at + 8] = '9';
    std::string text;
    for (const std::string& l : bad) text += l + "\n";
    const std::string e = parse_error(text);
    EXPECT_NE(e.find("ckpt: line 2: bad outcome digit"), std::string::npos)
        << e;
  }
  // Wrong schema.
  {
    std::string text = good;
    const std::size_t at = text.find("fsct-ckpt-v1");
    text.replace(at, 12, "fsct-ckpt-v9");
    EXPECT_NE(parse_error(text).find("unsupported checkpoint schema"),
              std::string::npos);
  }
  // Content after the sentinel.
  EXPECT_NE(parse_error(good + lines[1] + "\n")
                .find("content after end sentinel"),
            std::string::npos);
  // Empty file.
  EXPECT_NE(parse_error("").find("empty checkpoint"), std::string::npos);
}

TEST(Shard, ResumeRefusesForeignCheckpoints) {
  const std::unique_ptr<World> w1 = small_world(101);
  const std::unique_ptr<World> w2 = small_world(202);
  const std::string ck = ckpt_path("foreign.ckpt");
  const PipelineOptions opt = base_opt(1);

  ShardOptions so;
  so.shards = 2;
  so.checkpoint_path = ck;
  so.stop_after_safepoints = 2;
  {
    ShardRunner runner(*w1->model, w1->faults, opt, so);
    EXPECT_THROW(runner.run(), PipelineStopped);
  }

  // A different circuit refuses the checkpoint...
  ShardOptions ro;
  ro.shards = 2;
  ro.resume_path = ck;
  try {
    run_sharded_pipeline(*w2->model, w2->faults, opt, ro);
    ADD_FAILURE() << "resume accepted a foreign checkpoint";
  } catch (const ShardError& e) {
    EXPECT_NE(std::string(e.what()).find("binding hash mismatch"),
              std::string::npos)
        << e.what();
  }
  // ...and so does the same circuit under a result-affecting option change.
  PipelineOptions changed = base_opt(1);
  changed.random_patterns += 1;
  EXPECT_THROW(run_sharded_pipeline(*w1->model, w1->faults, changed, ro),
               ShardError);
  // Execution knobs are NOT binding: a resume at different jobs/shards runs.
  PipelineOptions rejob = base_opt(4);
  ShardOptions ro3;
  ro3.shards = 3;
  ro3.resume_path = ck;
  const PipelineResult resumed =
      run_sharded_pipeline(*w1->model, w1->faults, rejob, ro3);
  const PipelineResult fresh =
      run_fsct_pipeline(*w1->model, w1->faults, base_opt(1));
  EXPECT_EQ(diff_pipeline_results(fresh, resumed), "");
}

TEST(Shard, BindingHashCoversResultAffectingOptionsOnly) {
  const std::unique_ptr<World> w = small_world(7);
  const PipelineOptions a = base_opt(1);
  PipelineOptions b = base_opt(4);
  b.simd_width = 256;
  EXPECT_EQ(shard_binding_hash(*w->model, w->faults, a),
            shard_binding_hash(*w->model, w->faults, b));
  PipelineOptions c = base_opt(1);
  c.random_patterns = 7;
  EXPECT_NE(shard_binding_hash(*w->model, w->faults, a),
            shard_binding_hash(*w->model, w->faults, c));
  PipelineOptions d = base_opt(1);
  d.dominance = false;
  EXPECT_NE(shard_binding_hash(*w->model, w->faults, a),
            shard_binding_hash(*w->model, w->faults, d));
  PipelineOptions e = base_opt(1);
  e.verify_easy = false;
  EXPECT_NE(shard_binding_hash(*w->model, w->faults, a),
            shard_binding_hash(*w->model, w->faults, e));
}

// ---- resume-from-every-interval sweep --------------------------------------
// Stop cooperatively at safe point k for every k until the run completes
// uninterrupted; each stop's checkpoint must round-trip the text format and
// resume to the bitwise single-process result.

TEST(Shard, ResumeFromEverySafePointSweep) {
  const std::unique_ptr<World> w = small_world(33);
  const PipelineOptions opt = base_opt(1);
  const PipelineResult baseline = run_fsct_pipeline(*w->model, w->faults, opt);
  const std::string ck = ckpt_path("sweep.ckpt");

  int completed_at = -1;
  for (int k = 1; k < 10000; ++k) {
    ShardOptions so;
    so.shards = 2;
    so.checkpoint_path = ck;
    so.stop_after_safepoints = k;
    bool stopped = false;
    PipelineResult r;
    {
      ShardRunner runner(*w->model, w->faults, opt, so);
      try {
        r = runner.run();
      } catch (const PipelineStopped&) {
        stopped = true;
      }
    }
    if (!stopped) {
      EXPECT_EQ(diff_pipeline_results(baseline, r), "")
          << "uninterrupted sharded run differs (k=" << k << ")";
      completed_at = k;
      break;
    }
    const CheckpointData cd = read_checkpoint(ck);
    const std::string text = serialize_checkpoint(cd);
    EXPECT_EQ(serialize_checkpoint(parse_checkpoint(text, "mem")), text)
        << "checkpoint at safe point " << k << " does not round-trip";
    ShardOptions ro;
    ro.shards = 2;
    ro.resume_path = ck;
    const PipelineResult resumed =
        run_sharded_pipeline(*w->model, w->faults, opt, ro);
    EXPECT_EQ(diff_pipeline_results(baseline, resumed), "")
        << "resume from safe point " << k << " diverges";
  }
  // The loop must terminate by running out of safe points, and the sweep
  // must have actually exercised a meaningful number of them.
  ASSERT_GT(completed_at, 4) << "circuit too small to exercise the sweep";
}

}  // namespace
}  // namespace fsct
