// Whole-flow determinism: identical inputs must give bit-identical results
// run to run (no unordered-container iteration order leaking into decisions,
// no hidden global randomness).  Reproducibility is what makes the benches
// in bench/ meaningful.
#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "core/pipeline.h"
#include "scan/tpi.h"

namespace fsct {
namespace {

Netlist circuit() {
  RandomCircuitSpec spec;
  spec.num_gates = 240;
  spec.num_ffs = 18;
  spec.num_pis = 8;
  spec.num_pos = 5;
  spec.seed = 999;
  return make_random_sequential(spec);
}

TEST(Determinism, TpiProducesIdenticalChains) {
  Netlist nl1 = circuit();
  Netlist nl2 = circuit();
  const ScanDesign d1 = run_tpi(nl1);
  const ScanDesign d2 = run_tpi(nl2);
  ASSERT_EQ(d1.chains.size(), d2.chains.size());
  for (std::size_t c = 0; c < d1.chains.size(); ++c) {
    EXPECT_EQ(d1.chains[c].ffs, d2.chains[c].ffs);
    ASSERT_EQ(d1.chains[c].segments.size(), d2.chains[c].segments.size());
    for (std::size_t k = 0; k < d1.chains[c].segments.size(); ++k) {
      EXPECT_EQ(d1.chains[c].segments[k].path, d2.chains[c].segments[k].path);
      EXPECT_EQ(d1.chains[c].segments[k].inverting,
                d2.chains[c].segments[k].inverting);
    }
  }
  EXPECT_EQ(d1.pi_constraints, d2.pi_constraints);
  EXPECT_EQ(d1.test_points, d2.test_points);
}

TEST(Determinism, PipelineProducesIdenticalOutcomes) {
  Netlist nl1 = circuit();
  Netlist nl2 = circuit();
  const ScanDesign d1 = run_tpi(nl1);
  const ScanDesign d2 = run_tpi(nl2);
  const Levelizer lv1(nl1), lv2(nl2);
  const ScanModeModel m1(lv1, d1), m2(lv2, d2);
  const auto f1 = collapsed_fault_list(nl1);
  const auto f2 = collapsed_fault_list(nl2);
  ASSERT_EQ(f1, f2);

  // Wall-clock ATPG budgets are the one nondeterministic input; disable them
  // so both runs see identical cutoffs.
  PipelineOptions opt;
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  const PipelineResult r1 = run_fsct_pipeline(m1, f1, opt);
  const PipelineResult r2 = run_fsct_pipeline(m2, f2, opt);

  EXPECT_EQ(r1.easy, r2.easy);
  EXPECT_EQ(r1.hard, r2.hard);
  EXPECT_EQ(r1.s2_detected, r2.s2_detected);
  EXPECT_EQ(r1.s2_vectors, r2.s2_vectors);
  EXPECT_EQ(r1.s3_detected, r2.s3_detected);
  EXPECT_EQ(r1.s3_undetected, r2.s3_undetected);
  ASSERT_EQ(r1.outcome.size(), r2.outcome.size());
  for (std::size_t i = 0; i < r1.outcome.size(); ++i) {
    EXPECT_EQ(r1.outcome[i], r2.outcome[i]) << fault_name(nl1, f1[i]);
  }
  EXPECT_EQ(r1.detection_curve, r2.detection_curve);
}

// The concurrency determinism contract (DESIGN.md "Concurrency
// architecture"): the fault-parallel execution layer must produce bitwise
// identical pipeline results at any worker count — same per-fault outcomes,
// same detection curve, same step-2 vector set, same realised step-3
// sequences, in the same order.
TEST(Determinism, PipelineIdenticalAtAnyJobCount) {
  Netlist nl1 = circuit();
  Netlist nl2 = circuit();
  const ScanDesign d1 = run_tpi(nl1);
  const ScanDesign d2 = run_tpi(nl2);
  const Levelizer lv1(nl1), lv2(nl2);
  const ScanModeModel m1(lv1, d1), m2(lv2, d2);
  const auto f1 = collapsed_fault_list(nl1);
  const auto f2 = collapsed_fault_list(nl2);

  PipelineOptions opt;
  opt.comb_time_limit_ms = 0;
  opt.seq_time_limit_ms = 0;
  opt.final_time_limit_ms = 0;
  opt.verify_easy = true;
  opt.jobs = 1;
  const PipelineResult serial = run_fsct_pipeline(m1, f1, opt);
  opt.jobs = 4;
  const PipelineResult parallel = run_fsct_pipeline(m2, f2, opt);

  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 4u);
  EXPECT_EQ(serial.easy, parallel.easy);
  EXPECT_EQ(serial.hard, parallel.hard);
  EXPECT_EQ(serial.easy_verified, parallel.easy_verified);
  EXPECT_EQ(serial.s2_detected, parallel.s2_detected);
  EXPECT_EQ(serial.s2_undetectable, parallel.s2_undetectable);
  EXPECT_EQ(serial.s2_undetected, parallel.s2_undetected);
  EXPECT_EQ(serial.s2_vectors, parallel.s2_vectors);
  EXPECT_EQ(serial.s3_detected, parallel.s3_detected);
  EXPECT_EQ(serial.s3_undetectable, parallel.s3_undetectable);
  EXPECT_EQ(serial.s3_undetected, parallel.s3_undetected);
  EXPECT_EQ(serial.s3_unverified, parallel.s3_unverified);
  EXPECT_EQ(serial.s3_circuits_group, parallel.s3_circuits_group);
  EXPECT_EQ(serial.s3_circuits_final, parallel.s3_circuits_final);

  // Per-fault outcomes.
  ASSERT_EQ(serial.outcome.size(), parallel.outcome.size());
  for (std::size_t i = 0; i < serial.outcome.size(); ++i) {
    EXPECT_EQ(serial.outcome[i], parallel.outcome[i]) << fault_name(nl1, f1[i]);
  }
  // Figure-5 curve and the step-2 vector set, element for element.
  EXPECT_EQ(serial.detection_curve, parallel.detection_curve);
  EXPECT_EQ(serial.vectors, parallel.vectors);
  // Realised step-3 sequences, including their order.
  EXPECT_EQ(serial.s3_sequence_fault, parallel.s3_sequence_fault);
  EXPECT_EQ(serial.s3_sequences, parallel.s3_sequences);
}

TEST(Determinism, ClassifierParallelMatchesSerial) {
  Netlist nl = circuit();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel m(lv, d);
  const auto faults = collapsed_fault_list(nl);
  const auto serial = ChainFaultClassifier(m).classify_all(faults);
  ThreadPool pool(4);
  const auto parallel =
      ChainFaultClassifier::classify_all_parallel(m, faults, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].category, parallel[i].category);
    EXPECT_EQ(serial[i].locations, parallel[i].locations);
    EXPECT_EQ(serial[i].multi_chain, parallel[i].multi_chain);
  }
}

TEST(Determinism, ClassifierIsPureFunction) {
  Netlist nl = circuit();
  const ScanDesign d = run_tpi(nl);
  const Levelizer lv(nl);
  const ScanModeModel m(lv, d);
  ChainFaultClassifier cls(m);
  const auto faults = collapsed_fault_list(nl);
  const auto a = cls.classify_all(faults);
  const auto b = cls.classify_all(faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].locations, b[i].locations);
  }
}

}  // namespace
}  // namespace fsct
