#include "bench_circuits/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/suite.h"
#include "netlist/levelize.h"

namespace fsct {
namespace {

TEST(Generator, MatchesRequestedCounts) {
  RandomCircuitSpec spec;
  spec.num_pis = 7;
  spec.num_ffs = 13;
  spec.num_gates = 111;
  spec.seed = 42;
  const Netlist nl = make_random_sequential(spec);
  EXPECT_EQ(nl.inputs().size(), 7u);
  EXPECT_EQ(nl.dffs().size(), 13u);
  EXPECT_EQ(nl.num_gates(), 111u);
  EXPECT_GE(nl.outputs().size(), static_cast<std::size_t>(spec.num_pos));
  EXPECT_EQ(nl.validate(), "");
}

TEST(Generator, DeterministicInSeed) {
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 10;
  spec.seed = 9;
  const Netlist a = make_random_sequential(spec);
  const Netlist b = make_random_sequential(spec);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.type(id), b.type(id));
    EXPECT_EQ(a.fanins(id).size(), b.fanins(id).size());
    for (std::size_t p = 0; p < a.fanins(id).size(); ++p) {
      EXPECT_EQ(a.fanins(id)[p], b.fanins(id)[p]);
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 10;
  spec.seed = 1;
  const Netlist a = make_random_sequential(spec);
  spec.seed = 2;
  const Netlist b = make_random_sequential(spec);
  bool any_diff = a.size() != b.size();
  for (NodeId id = 0; id < a.size() && id < b.size() && !any_diff; ++id) {
    if (a.type(id) != b.type(id)) any_diff = true;
    const auto fa = a.fanins(id);
    const auto fb = b.fanins(id);
    if (!std::equal(fa.begin(), fa.end(), fb.begin(), fb.end())) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, NoDanglingLogic) {
  RandomCircuitSpec spec;
  spec.num_gates = 150;
  spec.num_ffs = 8;
  spec.seed = 33;
  const Netlist nl = make_random_sequential(spec);
  std::vector<int> fanout(nl.size(), 0);
  for (NodeId id = 0; id < nl.size(); ++id) {
    for (NodeId f : nl.fanins(id)) ++fanout[f];
  }
  for (NodeId po : nl.outputs()) ++fanout[po];
  for (NodeId id = 0; id < nl.size(); ++id) {
    if (is_combinational(nl.type(id))) {
      EXPECT_GT(fanout[id], 0) << nl.node_name(id) << " dangles";
    }
  }
}

TEST(Generator, BadSpecThrows) {
  RandomCircuitSpec spec;
  spec.num_gates = 0;
  EXPECT_THROW(make_random_sequential(spec), std::invalid_argument);
}

TEST(Suite, TwelveCircuitsWithPaperSizes) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite.front().name, "s1423");
  EXPECT_EQ(suite.back().name, "s38584");
  std::size_t total_ffs = 0;
  for (const SuiteEntry& e : suite) total_ffs += static_cast<std::size_t>(e.ffs);
  EXPECT_EQ(total_ffs, 6674u);  // published ISCAS'89 flip-flop counts
}

TEST(Suite, LookupByName) {
  EXPECT_EQ(suite_entry("s5378").ffs, 179);
  EXPECT_THROW(suite_entry("sXXXX"), std::invalid_argument);
}

TEST(Suite, BuildSmallestCircuitMatchesEntry) {
  const SuiteEntry& e = suite_entry("s1488");
  const Netlist nl = build_suite_circuit(e);
  EXPECT_EQ(nl.num_gates(), static_cast<std::size_t>(e.gates));
  EXPECT_EQ(nl.dffs().size(), static_cast<std::size_t>(e.ffs));
  EXPECT_EQ(nl.inputs().size(), static_cast<std::size_t>(e.pis));
  const Levelizer lv(nl);
  EXPECT_EQ(lv.topo_order().size(), nl.num_gates());
}

TEST(Suite, BuildIsDeterministic) {
  const SuiteEntry& e = suite_entry("s1423");
  const Netlist a = build_suite_circuit(e);
  const Netlist b = build_suite_circuit(e);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); id += 37) {
    EXPECT_EQ(a.type(id), b.type(id));
  }
}

}  // namespace
}  // namespace fsct
