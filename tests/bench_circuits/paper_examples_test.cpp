#include "bench_circuits/paper_examples.h"

#include <gtest/gtest.h>

#include "netlist/levelize.h"
#include "scan/scan_mode_model.h"
#include "sim/seq_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

TEST(PaperExamples, Figure2IsValid) {
  ExampleDesign e = paper_figure2();
  EXPECT_EQ(e.nl.validate(), "");
  ASSERT_EQ(e.design.chains.size(), 1u);
  EXPECT_EQ(e.design.chains[0].length(), 6u);
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.check(), "");
}

TEST(PaperExamples, Figure2ChainShiftsInScanMode) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  SeqSim sim(lv);
  sim.reset(k0);
  // PI order: scan_mode, si, en.
  auto vec = [&](Val si) { return std::vector<Val>{k1, si, k1}; };
  const Val stream[] = {k1, k0, k0, k1, k1, k1};
  for (Val b : stream) sim.step(vec(b));
  // After 6 shifts the first bit reaches f6 (no inverting segments).
  const auto& st = sim.state();  // f1..f6 in dff order
  EXPECT_EQ(st[5], k1);
  EXPECT_EQ(st[0], k1);  // last bit at the head
}

TEST(PaperExamples, Figure2FaultShortensChainByFour) {
  ExampleDesign e = paper_figure2();
  const Levelizer lv(e.nl);
  SeqSim good(lv), bad(lv);
  good.reset(k0);
  bad.reset(k0);
  const Injection inj[] = {{e.nl.find("en"), -1, k0}};
  auto vec = [&](Val si) { return std::vector<Val>{k1, si, k1}; };
  // Shift a unique marker pattern.
  const Val stream[] = {k1, k0, k0, k0, k0, k0, k0, k0};
  std::vector<Val> gout, bout;
  for (Val b : stream) {
    gout.push_back(good.step(vec(b))[e.nl.find("f6")]);
    bout.push_back(bad.step(vec(b), inj)[e.nl.find("f6")]);
  }
  // Good: marker leaves f6 after 6 cycles; faulty: after 2 (chain shortened
  // by exactly 4 stages).
  EXPECT_EQ(good.state()[5], k0);
  // Check the faulty machine "sees" the marker 4 cycles early: f6 after
  // cycle 3 holds the value shifted in at cycle 1 (delay 2).
  // The pre-edge observation at cycle t shows the state from cycle t-1.
  EXPECT_NE(gout, bout);
}

TEST(PaperExamples, Figure3IsValid) {
  ExampleDesign e = paper_figure3();
  EXPECT_EQ(e.nl.validate(), "");
  const Levelizer lv(e.nl);
  const ScanModeModel m(lv, e.design);
  EXPECT_EQ(m.check(), "");
  EXPECT_EQ(m.max_chain_length(), 4u);
}

TEST(PaperExamples, SmallCircuitsValidate) {
  EXPECT_EQ(small_counter().validate(), "");
  EXPECT_EQ(small_pipeline().validate(), "");
  EXPECT_EQ(iscas_s27().validate(), "");
}

TEST(PaperExamples, SmallCounterCounts) {
  const Netlist nl = small_counter();
  const Levelizer lv(nl);
  SeqSim sim(lv);
  sim.reset(k0);
  // 5 enabled cycles: counter goes 0->5 (q0..q3 LSB first).
  for (int i = 0; i < 5; ++i) sim.step(std::vector<Val>{k1});
  const auto& st = sim.state();
  EXPECT_EQ(st[0], k1);  // 5 = 0b0101
  EXPECT_EQ(st[1], k0);
  EXPECT_EQ(st[2], k1);
  EXPECT_EQ(st[3], k0);
  // Disabled cycle holds the value.
  sim.step(std::vector<Val>{k0});
  EXPECT_EQ(sim.state()[0], k1);
}

}  // namespace
}  // namespace fsct
