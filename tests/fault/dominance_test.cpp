#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "fault/comb_fault_sim.h"
#include "netlist/levelize.h"

namespace fsct {
namespace {

std::size_t idx(const std::vector<Fault>& fs, const Fault& f) {
  const auto it = std::find(fs.begin(), fs.end(), f);
  EXPECT_NE(it, fs.end());
  return static_cast<std::size_t>(it - fs.begin());
}

TEST(Dominance, AndOutputSa1DroppedForInputSa1) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  const auto faults = collapsed_fault_list(nl);
  ASSERT_EQ(faults.size(), 4u);  // {a sa0 (class), a sa1, b sa1, g sa1}
  const DominanceInfo di = collapse_dominant(nl, faults);
  EXPECT_EQ(di.targets.size(), 3u);
  EXPECT_EQ(di.dropped(), 1u);
  // g s-a-1 dominates a/b s-a-1; smallest resolved input fault represents it.
  EXPECT_EQ(di.rep[idx(faults, {g, -1, true})], idx(faults, {a, -1, true}));
  EXPECT_EQ(di.rep[idx(faults, {a, -1, false})], idx(faults, {a, -1, false}));
}

TEST(Dominance, NandOutputSa0DroppedForInputSa1) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Nand, {a, b}, "g");
  nl.mark_output(g);
  const auto faults = collapsed_fault_list(nl);
  const DominanceInfo di = collapse_dominant(nl, faults);
  EXPECT_EQ(di.rep[idx(faults, {g, -1, false})], idx(faults, {a, -1, true}));
  EXPECT_EQ(di.targets.size(), faults.size() - 1);
}

TEST(Dominance, OrAndNorOutputsDroppedForInputSa0) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Or, {a, b}, "g");
  const NodeId h = nl.add_gate(GateType::Nor, {a, b}, "h");
  nl.mark_output(g);
  nl.mark_output(h);
  const auto faults = collapsed_fault_list(nl);
  const DominanceInfo di = collapse_dominant(nl, faults);
  // OR out s-a-0 and NOR out s-a-1 both resolve to the smallest input s-a-0
  // fault of their own gate (the a branch, since a now fans out).
  EXPECT_EQ(di.rep[idx(faults, {g, -1, false})], idx(faults, {g, 0, false}));
  EXPECT_EQ(di.rep[idx(faults, {h, -1, true})], idx(faults, {h, 0, false}));
  EXPECT_EQ(di.dropped(), 2u);
}

TEST(Dominance, ChainsResolveToKeptFixpoint) {
  // g2 s-a-1 -> g1 s-a-1 -> a s-a-1: the expansion table must point at the
  // kept end of the chain, never at another dropped fault.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, {a, b}, "g1");
  const NodeId c = nl.add_input("c");
  const NodeId g2 = nl.add_gate(GateType::And, {g1, c}, "g2");
  nl.mark_output(g2);
  const auto faults = collapsed_fault_list(nl);
  const DominanceInfo di = collapse_dominant(nl, faults);
  const std::size_t a1 = idx(faults, {a, -1, true});
  EXPECT_EQ(di.rep[idx(faults, {g1, -1, true})], a1);
  EXPECT_EQ(di.rep[idx(faults, {g2, -1, true})], a1);
  for (const std::size_t t : di.targets) EXPECT_EQ(di.rep[t], t);
}

TEST(Dominance, DffBoundaryBlocksRepresentativeResolution) {
  // The AND's pin fault on the DFF output resolves (by equivalence) to the
  // fault on the DFF *input* side — a sequential equivalence, one shift cycle
  // apart, so it is not a valid single-vector representative.  The other pin
  // must be chosen instead.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff(a, "q");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {q, b}, "g");
  nl.mark_output(g);
  const auto faults = collapsed_fault_list(nl);
  const DominanceInfo di = collapse_dominant(nl, faults);
  EXPECT_EQ(di.rep[idx(faults, {g, -1, true})], idx(faults, {b, -1, true}));
}

TEST(Dominance, KeptWhenNoCombinationallyValidInputFaultExists) {
  // Both AND inputs come straight off DFFs: no representative is reachable
  // without crossing a sequential boundary, so the output fault stays a
  // target.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId q2 = nl.add_dff(b, "q2");
  const NodeId g = nl.add_gate(GateType::And, {q1, q2}, "g");
  nl.mark_output(g);
  const auto faults = collapsed_fault_list(nl);
  const DominanceInfo di = collapse_dominant(nl, faults);
  const std::size_t g1 = idx(faults, {g, -1, true});
  EXPECT_EQ(di.rep[g1], g1);
  EXPECT_TRUE(std::find(di.targets.begin(), di.targets.end(), g1) !=
              di.targets.end());
}

TEST(Dominance, TotalOverArbitraryLists) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::And, {a, a}, "g");
  nl.mark_output(g);
  const DominanceInfo empty = collapse_dominant(nl, {});
  EXPECT_TRUE(empty.targets.empty());
  EXPECT_TRUE(empty.rep.empty());
  // A fault outside the netlist's universe is simply kept.
  const std::vector<Fault> odd = {{g, 7, true}};
  const DominanceInfo di = collapse_dominant(nl, odd);
  ASSERT_EQ(di.rep.size(), 1u);
  EXPECT_EQ(di.rep[0], 0u);
  EXPECT_EQ(di.targets, std::vector<std::size_t>{0});
}

TEST(Dominance, PaperExamplesCollapseFurtherThanEquivalence) {
  std::vector<Netlist> circuits;
  circuits.push_back(paper_figure2().nl);
  circuits.push_back(paper_figure3().nl);
  circuits.push_back(small_pipeline());
  circuits.push_back(iscas_s27());
  for (const Netlist& nl : circuits) {
    const auto faults = collapsed_fault_list(nl);
    const DominanceInfo di = collapse_dominant(nl, faults);
    EXPECT_LT(di.targets.size(), faults.size()) << nl.name();
    EXPECT_GT(di.targets.size(), 0u);
    for (std::size_t i = 0; i < di.rep.size(); ++i) {
      EXPECT_EQ(di.rep[di.rep[i]], di.rep[i]);  // idempotent expansion
    }
    EXPECT_TRUE(std::is_sorted(di.targets.begin(), di.targets.end()));
  }
}

// The property the whole layer rests on: expanding a collapsed outcome
// reproduces the uncollapsed verdict.  For any pattern set, a pattern
// detecting the representative also detects every fault it stands for, so
// the dominated fault's first detection can never come later.
TEST(Dominance, ExpansionReproducesUncollapsedVerdictsOnFuzzCircuits) {
  for (int iter = 0; iter < 200; ++iter) {
    RandomCircuitSpec spec;
    spec.num_gates = 40;
    spec.num_ffs = 5;
    spec.num_pis = 6;
    spec.num_pos = 4;
    spec.seed = 9000ull + static_cast<std::uint64_t>(iter);
    const Netlist nl = make_random_sequential(spec);
    const auto faults = collapsed_fault_list(nl);
    const DominanceInfo di = collapse_dominant(nl, faults);
    ASSERT_EQ(di.rep.size(), faults.size());

    const Levelizer lv(nl);
    std::vector<NodeId> observe = nl.outputs();
    for (NodeId ff : nl.dffs()) observe.push_back(ff);
    CombFaultSim sim(lv, observe);
    std::mt19937_64 rng(0xd0a1ull * static_cast<std::uint64_t>(iter + 1));
    std::vector<CombPattern> pats(48);
    for (CombPattern& pat : pats) {
      pat.resize(nl.inputs().size() + nl.dffs().size());
      for (Val& v : pat) v = (rng() & 1) ? Val::One : Val::Zero;
    }
    const CombFaultSimResult fr = sim.run(pats, faults, nullptr, nullptr);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const std::size_t r = di.rep[i];
      if (r == i) continue;
      if (fr.detect_pattern[r] < 0) continue;
      ASSERT_GE(fr.detect_pattern[i], 0)
          << "seed " << spec.seed << ": " << fault_name(nl, faults[i])
          << " not detected though its representative "
          << fault_name(nl, faults[r]) << " is";
      ASSERT_LE(fr.detect_pattern[i], fr.detect_pattern[r])
          << "seed " << spec.seed << ": " << fault_name(nl, faults[i]);
    }
  }
}

}  // namespace
}  // namespace fsct
