#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

bool contains(const std::vector<Fault>& fs, const Fault& f) {
  return std::find(fs.begin(), fs.end(), f) != fs.end();
}

TEST(Fault, NamesAreReadable) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Nand, {a, a}, "g");
  EXPECT_EQ(fault_name(nl, {a, -1, true}), "a s-a-1");
  EXPECT_EQ(fault_name(nl, {g, 0, false}), "g/0(a) s-a-0");
}

TEST(Fault, InjectionConversion) {
  const Fault f{3, 1, true};
  const Injection i = to_injection(f);
  EXPECT_EQ(i.node, 3u);
  EXPECT_EQ(i.pin, 1);
  EXPECT_EQ(i.value, Val::One);
  const PackedInjection p = to_packed_injection(f, 0xff);
  EXPECT_EQ(p.mask, 0xffull);
  EXPECT_EQ(p.value, Val::One);
}

TEST(Fault, UniverseHasStemFaultsEverywhere) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  const auto fs = all_faults(nl);
  EXPECT_TRUE(contains(fs, {a, -1, false}));
  EXPECT_TRUE(contains(fs, {a, -1, true}));
  EXPECT_TRUE(contains(fs, {g, -1, false}));
  EXPECT_TRUE(contains(fs, {g, -1, true}));
  // single-fanout driver: no branch faults
  EXPECT_FALSE(contains(fs, {g, 0, false}));
}

TEST(Fault, UniverseHasBranchFaultsOnFanoutStems) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Not, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  nl.mark_output(g1);
  nl.mark_output(g2);
  const auto fs = all_faults(nl);
  EXPECT_TRUE(contains(fs, {g1, 0, false}));
  EXPECT_TRUE(contains(fs, {g2, 0, true}));
}

TEST(Fault, PoConnectionCountsAsFanout) {
  // a drives g and is also a PO: the pin of g is a branch.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(a);
  nl.mark_output(g);
  const auto fs = all_faults(nl);
  EXPECT_TRUE(contains(fs, {g, 0, false}));
}

TEST(Fault, CollapseAndGate) {
  // AND: input s-a-0 == output s-a-0; the class keeps one representative.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  const auto fs = collapsed_fault_list(nl);
  // Uncollapsed: a0,a1,b0,b1,g0,g1 = 6; {a0,b0,g0} merge -> 4.
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_TRUE(contains(fs, {a, -1, false}));   // representative of the class
  EXPECT_FALSE(contains(fs, {g, -1, false}));  // merged away
  EXPECT_TRUE(contains(fs, {g, -1, true}));
}

TEST(Fault, CollapseNotChain) {
  // a -> NOT g1 -> NOT g2: a0==g1_1==g2_0, a1==g1_0==g2_1 -> 2 classes.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Not, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Not, {g1}, "g2");
  nl.mark_output(g2);
  const auto fs = collapsed_fault_list(nl);
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Fault, CollapseNandGate) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Nand, {a, b}, "g");
  nl.mark_output(g);
  const auto fs = collapsed_fault_list(nl);
  // {a0, b0, g1} merge: 6 - 2 = 4.
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_FALSE(contains(fs, {g, -1, true}));
  EXPECT_TRUE(contains(fs, {g, -1, false}));
}

TEST(Fault, BranchFaultsDoNotCollapseAcrossFanout) {
  // a fans out to g1 (AND with b) and g2 (BUF). The branch fault g1/0 s-a-0
  // collapses with g1's output, but NOT with a's stem.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, {a, b}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  nl.mark_output(g1);
  nl.mark_output(g2);
  const auto fs = collapsed_fault_list(nl);
  EXPECT_TRUE(contains(fs, {a, -1, false}));  // stem survives independently
  // The class {g1/0 s-a-0, g1 s-a-0, b s-a-0} (b is a single-fanout driver
  // of the other AND input) keeps exactly one representative.
  const int reps = contains(fs, {g1, 0, false}) +
                   contains(fs, {g1, -1, false}) +
                   contains(fs, {b, -1, false});
  EXPECT_EQ(reps, 1);
}

TEST(Fault, CollapseIsDeterministicAndSorted) {
  const Netlist nl = iscas_s27();
  const auto f1 = collapsed_fault_list(nl);
  const auto f2 = collapsed_fault_list(nl);
  EXPECT_EQ(f1, f2);
  EXPECT_TRUE(std::is_sorted(f1.begin(), f1.end()));
}

TEST(Fault, S27CollapsedSmallerThanUniverse) {
  const Netlist nl = iscas_s27();
  const auto all = all_faults(nl);
  const auto col = collapsed_fault_list(nl);
  EXPECT_LT(col.size(), all.size());
  EXPECT_GT(col.size(), all.size() / 3);
}

}  // namespace
}  // namespace fsct
