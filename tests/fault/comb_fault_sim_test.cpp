#include "fault/comb_fault_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "sim/comb_sim.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

// Reference: scalar full simulation, good vs faulty, per pattern.
std::vector<int> reference_detect(const Levelizer& lv,
                                  const std::vector<NodeId>& observe,
                                  std::span<const CombPattern> patterns,
                                  std::span<const Fault> faults) {
  const Netlist& nl = lv.netlist();
  CombSim sim(lv);
  std::vector<int> out(faults.size(), -1);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Injection inj[1] = {to_injection(faults[fi])};
    for (std::size_t p = 0; p < patterns.size() && out[fi] < 0; ++p) {
      std::vector<Val> good(nl.size(), Val::X);
      std::vector<Val> bad(nl.size(), Val::X);
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        good[nl.inputs()[i]] = bad[nl.inputs()[i]] = patterns[p][i];
      }
      for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
        good[nl.dffs()[i]] = bad[nl.dffs()[i]] =
            patterns[p][nl.inputs().size() + i];
      }
      sim.run(good);
      sim.run(bad, inj);
      for (NodeId o : observe) {
        Val g, b;
        if (nl.type(o) == GateType::Dff) {
          g = sim.d_value(o, good);
          b = sim.d_value(o, bad, inj);
        } else {
          g = good[o];
          b = bad[o];
        }
        if (g != Val::X && b != Val::X && g != b) {
          out[fi] = static_cast<int>(p);
          break;
        }
      }
    }
  }
  return out;
}

TEST(CombFaultSim, DetectsSimpleFault) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  const Levelizer lv(nl);
  CombFaultSim sim(lv, nl.outputs());
  const std::vector<CombPattern> pats = {{k1, k1}, {k0, k1}};
  const std::vector<Fault> faults = {{g, -1, false}, {g, -1, true}};
  const auto r = sim.run(pats, faults);
  EXPECT_EQ(r.detect_pattern[0], 0);  // s-a-0 seen with 11
  EXPECT_EQ(r.detect_pattern[1], 1);  // s-a-1 seen with 01
}

TEST(CombFaultSim, ObservesDffDPins) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  const NodeId q = nl.add_dff(g, "q");
  const Levelizer lv(nl);
  CombFaultSim sim(lv, {q});
  const std::vector<CombPattern> pats = {{k0, k0}};  // a=0, q=0
  const std::vector<Fault> faults = {{g, -1, false}};
  const auto r = sim.run(pats, faults);
  EXPECT_EQ(r.detect_pattern[0], 0);
}

TEST(CombFaultSim, DffPinFaultDetectedAtItsCapture) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff(a, "q");
  const NodeId q2 = nl.add_dff(a, "q2");
  nl.mark_output(q);
  nl.mark_output(q2);
  const Levelizer lv(nl);
  CombFaultSim sim(lv, {q, q2});
  const std::vector<CombPattern> pats = {{k1, k0, k0}};  // a=1
  const std::vector<Fault> faults = {{q, 0, false}};
  const auto r = sim.run(pats, faults);
  EXPECT_EQ(r.detect_pattern[0], 0);
}

TEST(CombFaultSim, XPatternValuesBlockDetection) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Buf, {a}, "g");
  nl.mark_output(g);
  const Levelizer lv(nl);
  CombFaultSim sim(lv, nl.outputs());
  const std::vector<CombPattern> pats = {{Val::X}};
  const std::vector<Fault> faults = {{g, -1, false}};
  const auto r = sim.run(pats, faults);
  EXPECT_EQ(r.detect_pattern[0], -1);
}

TEST(CombFaultSim, MatchesScalarReferenceOnRandomCircuits) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 3; ++trial) {
    RandomCircuitSpec spec;
    spec.num_gates = 140;
    spec.num_ffs = 10;
    spec.num_pis = 6;
    spec.num_pos = 5;
    spec.seed = 90 + static_cast<std::uint64_t>(trial);
    const Netlist nl = make_random_sequential(spec);
    const Levelizer lv(nl);

    std::vector<NodeId> observe = nl.outputs();
    for (NodeId ff : nl.dffs()) observe.push_back(ff);
    CombFaultSim sim(lv, observe);

    std::vector<CombPattern> pats(100);
    for (auto& p : pats) {
      p.resize(nl.inputs().size() + nl.dffs().size());
      for (auto& v : p) v = (rng() & 1) ? k1 : k0;
    }
    const auto faults = collapsed_fault_list(nl);
    std::vector<Fault> sample;
    for (std::size_t i = 0; i < faults.size(); i += 1 + faults.size() / 120) {
      sample.push_back(faults[i]);
    }
    const auto fast = sim.run(pats, sample);
    const auto ref = reference_detect(lv, observe, pats, sample);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      // The engine drops faults at the first detection within a 64-pattern
      // block; both first-detections must agree exactly.
      EXPECT_EQ(fast.detect_pattern[i], ref[i])
          << fault_name(nl, sample[i]) << " trial " << trial;
    }
  }
}

TEST(CombFaultSim, NumDetectedHelper) {
  CombFaultSimResult r;
  r.detect_pattern = {-1, 0, 5, -1};
  EXPECT_EQ(r.num_detected(), 2u);
}

}  // namespace
}  // namespace fsct
