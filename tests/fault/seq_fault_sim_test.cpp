#include "fault/seq_fault_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"
#include "core/obs.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

// 3-stage shift register with observable tail.
Netlist shift3() {
  Netlist nl("shift3");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId q2 = nl.add_dff(q1, "q2");
  const NodeId q3 = nl.add_dff(q2, "q3");
  nl.mark_output(q3);
  return nl;
}

TestSequence alternating_pis(std::size_t cycles) {
  TestSequence seq;
  for (std::size_t t = 0; t < cycles; ++t) {
    seq.push_back({((t / 2) % 2) ? k1 : k0});
  }
  return seq;
}

TEST(SeqFaultSim, AlternatingDetectsStuckChain) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {
      {nl.find("q1"), -1, false},  // q1 s-a-0
      {nl.find("q2"), -1, true},   // q2 s-a-1
      {nl.find("a"), -1, false},   // scan-in s-a-0
  };
  const auto r = sim.run_serial(alternating_pis(12), faults);
  EXPECT_EQ(r.num_detected(), 3u);
  for (int c : r.detect_cycle) EXPECT_GE(c, 0);
}

TEST(SeqFaultSim, ConstantStreamMissesStuckAtSameValue) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q1"), -1, false}};
  TestSequence zeros(12, {k0});
  const auto r = sim.run_serial(zeros, faults);
  EXPECT_EQ(r.num_detected(), 0u);  // all-zero stream can't see s-a-0
}

TEST(SeqFaultSim, DetectionCycleIsFirstDifference) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q3"), -1, true}};
  TestSequence zeros(6, {k0});
  const auto r = sim.run_serial(zeros, faults);
  // q3 observed s-a-1 while good machine shows 0 as soon as the good value
  // is binary: good q3 becomes 0 at cycle 3 (X before).
  ASSERT_EQ(r.num_detected(), 1u);
  EXPECT_EQ(r.detect_cycle[0], 3);
}

TEST(SeqFaultSim, XGoodValueNeverDetects) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q3"), -1, true}};
  TestSequence two(2, {k0});  // good q3 still X at cycles 0..1
  const auto r = sim.run_serial(two, faults);
  EXPECT_EQ(r.num_detected(), 0u);
}

TEST(SeqFaultSim, ParallelMatchesSerialOnRandomCircuits) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    RandomCircuitSpec spec;
    spec.num_gates = 120;
    spec.num_ffs = 12;
    spec.num_pis = 5;
    spec.num_pos = 4;
    spec.seed = 40 + static_cast<std::uint64_t>(trial);
    const Netlist nl = make_random_sequential(spec);
    const Levelizer lv(nl);
    SeqFaultSim sim(lv, nl.outputs());

    TestSequence seq;
    for (int t = 0; t < 20; ++t) {
      std::vector<Val> v(nl.inputs().size());
      for (auto& x : v) x = (rng() & 1) ? k1 : k0;
      seq.push_back(std::move(v));
    }
    const auto faults = collapsed_fault_list(nl);
    // Sample ~150 faults to keep the serial reference fast.
    std::vector<Fault> sample;
    for (std::size_t i = 0; i < faults.size(); i += 1 + faults.size() / 150) {
      sample.push_back(faults[i]);
    }
    const auto rs = sim.run_serial(seq, sample);
    const auto rp = sim.run(seq, sample);
    ASSERT_EQ(rs.detect_cycle.size(), rp.detect_cycle.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      EXPECT_EQ(rs.detect_cycle[i], rp.detect_cycle[i])
          << fault_name(nl, sample[i]) << " trial " << trial;
    }
  }
}

TEST(SeqFaultSim, ParallelHandlesMoreThan63Faults) {
  RandomCircuitSpec gspec;
  gspec.num_gates = 60;
  gspec.num_ffs = 8;
  gspec.num_pis = 4;
  gspec.num_pos = 4;
  gspec.seed = 321;
  const Netlist nl = make_random_sequential(gspec);
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  std::mt19937_64 rng(11);
  TestSequence seq;
  for (int t = 0; t < 30; ++t) {
    std::vector<Val> v(nl.inputs().size());
    for (auto& x : v) x = (rng() & 1) ? k1 : k0;
    seq.push_back(std::move(v));
  }
  const auto faults = all_faults(nl);  // > 63 faults
  ASSERT_GT(faults.size(), 63u);
  const auto rs = sim.run_serial(seq, faults);
  const auto rp = sim.run(seq, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(rs.detect_cycle[i], rp.detect_cycle[i])
        << fault_name(nl, faults[i]);
  }
}

// --- Chain-broken-by-target-fault edge cases -------------------------------
//
// The pipeline's flush-credit and ledger passes lean on one property: a fault
// that breaks the scan chain during shift-in corrupts the very stream that is
// supposed to expose it, and that corruption is itself the detection.  These
// tests pin the exact mechanics on hand-built chains.

// Chain with a functional AND link between q1 and q2, enabled by `en`.
Netlist and_link_chain() {
  Netlist nl("and_link");
  const NodeId a = nl.add_input("a");
  const NodeId en = nl.add_input("en");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId link = nl.add_gate(GateType::And, {q1, en}, "link");
  const NodeId q2 = nl.add_dff(link, "q2");
  const NodeId q3 = nl.add_dff(q2, "q3");
  nl.mark_output(q3);
  return nl;
}

TEST(SeqFaultSim, ChainLinkBrokenByTargetFaultDetectedAtExactCycle) {
  // The target fault (link enable s-a-0) breaks the chain between q1 and q2
  // while the marker is mid-shift; everything downstream of the break loads
  // zero, and the first good binary 1 at the tail is the detection.
  const Netlist nl = and_link_chain();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("link"), 1, false}};
  TestSequence seq;
  for (std::size_t t = 0; t < 8; ++t) {
    seq.push_back({(t % 2) ? k0 : k1, k1});  // a = 1,0,1,0..., en = 1
  }
  const auto r = sim.run_serial(seq, faults);
  ASSERT_EQ(r.num_detected(), 1u);
  // Good q3 first turns binary (a[0] == 1) entering cycle 3; the faulty
  // machine's q2/q3 have been flushed to 0 since cycle 2.
  EXPECT_EQ(r.detect_cycle[0], 3);
}

TEST(SeqFaultSim, BrokenScanInSelfExposesDespiteCorruptingItsOwnLoad) {
  // Scan-in stem s-a-0: the intended marker load never happens under the
  // fault, yet the corrupted (all-zero) stream differs from the good marker
  // at the tail — the fault exposes itself.  This self-exposure is what makes
  // crediting chain faults from a flush simulation sound.
  const Netlist nl = and_link_chain();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("a"), -1, false}};
  TestSequence seq;
  for (std::size_t t = 0; t < 8; ++t) {
    seq.push_back({t == 0 ? k1 : k0, k1});  // single marker 1, en = 1
  }
  const auto r = sim.run_serial(seq, faults);
  ASSERT_EQ(r.num_detected(), 1u);
  EXPECT_EQ(r.detect_cycle[0], 3);
}

// 4-stage chain with a mux bypass: under `sel` the tail FF reads q1 directly,
// shortening the effective chain by two stages.
Netlist bypass_chain() {
  Netlist nl("bypass");
  const NodeId a = nl.add_input("a");
  const NodeId sel = nl.add_input("sel");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId q2 = nl.add_dff(q1, "q2");
  const NodeId q3 = nl.add_dff(q2, "q3");
  const NodeId nsel = nl.add_gate(GateType::Not, {sel}, "nsel");
  const NodeId keep = nl.add_gate(GateType::And, {q3, nsel}, "keep");
  const NodeId skip = nl.add_gate(GateType::And, {q1, sel}, "skip");
  const NodeId d4 = nl.add_gate(GateType::Or, {keep, skip}, "d4");
  const NodeId q4 = nl.add_dff(d4, "q4");
  nl.mark_output(q4);
  return nl;
}

TEST(SeqFaultSim, ChainShorteningEscapesPureAlternationButNotMarkerLoad) {
  // sel s-a-1 shortens the chain by exactly two stages.  A strict 0101 stream
  // is shift-invariant under an even shortening, so the flush never sees it;
  // a single-marker load pins the length and catches it at an exact cycle.
  // (The pipeline's alternating flush uses a 0011 stream for the same reason:
  // no single edge pattern catches every shortening, which is why flush
  // credit is a screen, not a proof obligation.)
  const Netlist nl = bypass_chain();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q4")});
  const std::vector<Fault> faults = {{nl.find("sel"), -1, true}};

  TestSequence alt;
  for (std::size_t t = 0; t < 12; ++t) {
    alt.push_back({(t % 2) ? k1 : k0, k0});  // a = 0,1,0,1..., sel = 0
  }
  const auto ra = sim.run_serial(alt, faults);
  EXPECT_EQ(ra.num_detected(), 0u);

  TestSequence marker;
  for (std::size_t t = 0; t < 12; ++t) {
    marker.push_back({t == 0 ? k1 : k0, k0});  // single 1, sel = 0
  }
  const auto rm = sim.run_serial(marker, faults);
  ASSERT_EQ(rm.num_detected(), 1u);
  // Good q4 shows the marker entering cycle 4; the shortened chain already
  // flushed it out two cycles earlier.
  EXPECT_EQ(rm.detect_cycle[0], 4);
}

TEST(SeqFaultSim, DetectionIsProgramRelativeWhenObservationIsGated) {
  // Observation only through po = AND(q3, go).  A per-vector combinational
  // argument says q1 s-a-0 is observable at po — but only a program that
  // actually raises `go` reproduces it.  This is why the pipeline never
  // trusts a combinational claim (or a dominance implication) for outcomes:
  // every credit must be earned by simulating the real program.
  Netlist nl("gated");
  const NodeId a = nl.add_input("a");
  const NodeId go = nl.add_input("go");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId q2 = nl.add_dff(q1, "q2");
  const NodeId q3 = nl.add_dff(q2, "q3");
  const NodeId po = nl.add_gate(GateType::And, {q3, go}, "po");
  nl.mark_output(po);
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {po});
  const std::vector<Fault> faults = {{q1, -1, false}};

  TestSequence closed, open;
  for (std::size_t t = 0; t < 8; ++t) {
    closed.push_back({t == 0 ? k1 : k0, k0});  // marker, gate held shut
    open.push_back({t == 0 ? k1 : k0, k1});    // marker, gate open
  }
  EXPECT_EQ(sim.run_serial(closed, faults).num_detected(), 0u);
  const auto r = sim.run_serial(open, faults);
  ASSERT_EQ(r.num_detected(), 1u);
  EXPECT_EQ(r.detect_cycle[0], 3);
}

TEST(SeqFaultSim, PinFaultDiffersFromStemFault) {
  // a fans out to q1 and po buffer; pin fault on q1's D only breaks the FF.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId buf = nl.add_gate(GateType::Buf, {a}, "buf");
  nl.mark_output(q1);
  nl.mark_output(buf);
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  TestSequence ones(4, {k1});
  const std::vector<Fault> faults = {
      {q1, 0, false},   // branch into the FF
      {a, -1, false},   // stem
  };
  const auto r = sim.run_serial(ones, faults);
  // Both detected, but the stem is visible at `buf` a cycle earlier.
  ASSERT_EQ(r.num_detected(), 2u);
  EXPECT_GT(r.detect_cycle[0], r.detect_cycle[1]);
}

// --- Lane-width contract ----------------------------------------------------

/// A random circuit, stimulus and >63-fault list shared by the width tests.
struct WidthFixture {
  Netlist nl;
  TestSequence seq;
  std::vector<Fault> faults;

  WidthFixture() {
    RandomCircuitSpec spec;
    spec.num_gates = 80;
    spec.num_ffs = 9;
    spec.num_pis = 5;
    spec.num_pos = 4;
    spec.seed = 97;
    nl = make_random_sequential(spec);
    std::mt19937_64 rng(5);
    for (int t = 0; t < 25; ++t) {
      std::vector<Val> v(nl.inputs().size());
      for (auto& x : v) x = (rng() & 1) ? k1 : k0;
      seq.push_back(std::move(v));
    }
    faults = all_faults(nl);
  }
};

TEST(SeqFaultSim, OutcomesAreIdenticalAtEveryWidth) {
  const WidthFixture fx;
  const Levelizer lv(fx.nl);
  const SeqFaultSim ref(lv, fx.nl.outputs(), 64);
  const auto want = ref.run_serial(fx.seq, fx.faults);
  for (const int width : kSimdWidths) {
    const SeqFaultSim sim(lv, fx.nl.outputs(), width);
    EXPECT_EQ(sim.simd_width(), width);
    const auto got = sim.run(fx.seq, fx.faults);
    ASSERT_EQ(got.detect_cycle.size(), want.detect_cycle.size());
    for (std::size_t i = 0; i < fx.faults.size(); ++i) {
      EXPECT_EQ(got.detect_cycle[i], want.detect_cycle[i])
          << fault_name(fx.nl, fx.faults[i]) << " width " << width;
    }
  }
}

TEST(SeqFaultSim, RunPairsMatchesSerialPerPair) {
  // Pairs with *different* sequences of different lengths (one empty) packed
  // into the same passes; each pair must behave exactly like its own serial
  // run.
  const WidthFixture fx;
  const Levelizer lv(fx.nl);
  TestSequence shorter(fx.seq.begin(), fx.seq.begin() + 7);
  const TestSequence empty;
  const TestSequence* seqs[3] = {&fx.seq, &shorter, &empty};

  std::vector<FaultSeqPair> pairs;
  for (std::size_t i = 0; i < fx.faults.size(); ++i) {
    pairs.push_back({fx.faults[i], seqs[i % 3]});
  }
  const SeqFaultSim ref(lv, fx.nl.outputs(), 64);
  for (const int width : kSimdWidths) {
    const SeqFaultSim sim(lv, fx.nl.outputs(), width);
    const std::vector<int> got = sim.run_pairs(pairs);
    ASSERT_EQ(got.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Fault one[1] = {pairs[i].fault};
      EXPECT_EQ(got[i], ref.run_serial(*pairs[i].seq, one).detect_cycle[0])
          << fault_name(fx.nl, pairs[i].fault) << " width " << width;
    }
  }
}

TEST(SeqFaultSim, PackedPassCountsArePureFunctionOfCountAndWidth) {
  // The counter contract (seq_fault_sim.h): run() partitions into
  // ceil(n / (63 * W/64)) passes, run_pairs() into ceil(n / (32 * W/64)) —
  // independent of detections, schedule or pool size.  600 jobs spans
  // multiple passes at every width (duplicated faults are fine: lanes are
  // independent).
  const WidthFixture fx;
  const Levelizer lv(fx.nl);
  std::vector<Fault> faults;
  std::vector<FaultSeqPair> pairs;
  for (std::size_t i = 0; i < 600; ++i) {
    faults.push_back(fx.faults[i % fx.faults.size()]);
    pairs.push_back({faults.back(), &fx.seq});
  }

  const struct { int width; std::uint64_t run_passes, pair_passes; } want[] = {
      {64, 10, 19},   // ceil(600/63),  ceil(600/32)
      {256, 3, 5},    // ceil(600/252), ceil(600/128)
      {512, 2, 3},    // ceil(600/504), ceil(600/256)
  };
  for (const auto& w : want) {
    const SeqFaultSim sim(lv, fx.nl.outputs(), w.width);
    ObsRegistry reg_run;
    sim.run(fx.seq, faults, Val::X, nullptr, &reg_run);
    EXPECT_EQ(reg_run.total(Ctr::SeqSimPackedPasses), w.run_passes)
        << "run() width " << w.width;
    ObsRegistry reg_pairs;
    sim.run_pairs(pairs, Val::X, nullptr, &reg_pairs);
    EXPECT_EQ(reg_pairs.total(Ctr::SeqSimPackedPasses), w.pair_passes)
        << "run_pairs() width " << w.width;

    // Detection counts are width-independent.
    ObsRegistry reg_again;
    sim.run(fx.seq, faults, Val::X, nullptr, &reg_again);
    EXPECT_EQ(reg_again.total(Ctr::SeqSimPackedPasses), w.run_passes);
  }
}

TEST(SeqFaultSim, InvalidWidthThrows) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  EXPECT_THROW(SeqFaultSim(lv, {nl.find("q3")}, 128), std::invalid_argument);
  EXPECT_THROW(SeqFaultSim(lv, {nl.find("q3")}, -1), std::invalid_argument);
}

}  // namespace
}  // namespace fsct
