#include "fault/seq_fault_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

// 3-stage shift register with observable tail.
Netlist shift3() {
  Netlist nl("shift3");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId q2 = nl.add_dff(q1, "q2");
  const NodeId q3 = nl.add_dff(q2, "q3");
  nl.mark_output(q3);
  return nl;
}

TestSequence alternating_pis(std::size_t cycles) {
  TestSequence seq;
  for (std::size_t t = 0; t < cycles; ++t) {
    seq.push_back({((t / 2) % 2) ? k1 : k0});
  }
  return seq;
}

TEST(SeqFaultSim, AlternatingDetectsStuckChain) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {
      {nl.find("q1"), -1, false},  // q1 s-a-0
      {nl.find("q2"), -1, true},   // q2 s-a-1
      {nl.find("a"), -1, false},   // scan-in s-a-0
  };
  const auto r = sim.run_serial(alternating_pis(12), faults);
  EXPECT_EQ(r.num_detected(), 3u);
  for (int c : r.detect_cycle) EXPECT_GE(c, 0);
}

TEST(SeqFaultSim, ConstantStreamMissesStuckAtSameValue) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q1"), -1, false}};
  TestSequence zeros(12, {k0});
  const auto r = sim.run_serial(zeros, faults);
  EXPECT_EQ(r.num_detected(), 0u);  // all-zero stream can't see s-a-0
}

TEST(SeqFaultSim, DetectionCycleIsFirstDifference) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q3"), -1, true}};
  TestSequence zeros(6, {k0});
  const auto r = sim.run_serial(zeros, faults);
  // q3 observed s-a-1 while good machine shows 0 as soon as the good value
  // is binary: good q3 becomes 0 at cycle 3 (X before).
  ASSERT_EQ(r.num_detected(), 1u);
  EXPECT_EQ(r.detect_cycle[0], 3);
}

TEST(SeqFaultSim, XGoodValueNeverDetects) {
  const Netlist nl = shift3();
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, {nl.find("q3")});
  const std::vector<Fault> faults = {{nl.find("q3"), -1, true}};
  TestSequence two(2, {k0});  // good q3 still X at cycles 0..1
  const auto r = sim.run_serial(two, faults);
  EXPECT_EQ(r.num_detected(), 0u);
}

TEST(SeqFaultSim, ParallelMatchesSerialOnRandomCircuits) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    RandomCircuitSpec spec;
    spec.num_gates = 120;
    spec.num_ffs = 12;
    spec.num_pis = 5;
    spec.num_pos = 4;
    spec.seed = 40 + static_cast<std::uint64_t>(trial);
    const Netlist nl = make_random_sequential(spec);
    const Levelizer lv(nl);
    SeqFaultSim sim(lv, nl.outputs());

    TestSequence seq;
    for (int t = 0; t < 20; ++t) {
      std::vector<Val> v(nl.inputs().size());
      for (auto& x : v) x = (rng() & 1) ? k1 : k0;
      seq.push_back(std::move(v));
    }
    const auto faults = collapsed_fault_list(nl);
    // Sample ~150 faults to keep the serial reference fast.
    std::vector<Fault> sample;
    for (std::size_t i = 0; i < faults.size(); i += 1 + faults.size() / 150) {
      sample.push_back(faults[i]);
    }
    const auto rs = sim.run_serial(seq, sample);
    const auto rp = sim.run(seq, sample);
    ASSERT_EQ(rs.detect_cycle.size(), rp.detect_cycle.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      EXPECT_EQ(rs.detect_cycle[i], rp.detect_cycle[i])
          << fault_name(nl, sample[i]) << " trial " << trial;
    }
  }
}

TEST(SeqFaultSim, ParallelHandlesMoreThan63Faults) {
  RandomCircuitSpec gspec;
  gspec.num_gates = 60;
  gspec.num_ffs = 8;
  gspec.num_pis = 4;
  gspec.num_pos = 4;
  gspec.seed = 321;
  const Netlist nl = make_random_sequential(gspec);
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  std::mt19937_64 rng(11);
  TestSequence seq;
  for (int t = 0; t < 30; ++t) {
    std::vector<Val> v(nl.inputs().size());
    for (auto& x : v) x = (rng() & 1) ? k1 : k0;
    seq.push_back(std::move(v));
  }
  const auto faults = all_faults(nl);  // > 63 faults
  ASSERT_GT(faults.size(), 63u);
  const auto rs = sim.run_serial(seq, faults);
  const auto rp = sim.run(seq, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(rs.detect_cycle[i], rp.detect_cycle[i])
        << fault_name(nl, faults[i]);
  }
}

TEST(SeqFaultSim, PinFaultDiffersFromStemFault) {
  // a fans out to q1 and po buffer; pin fault on q1's D only breaks the FF.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff(a, "q1");
  const NodeId buf = nl.add_gate(GateType::Buf, {a}, "buf");
  nl.mark_output(q1);
  nl.mark_output(buf);
  const Levelizer lv(nl);
  SeqFaultSim sim(lv, nl.outputs());
  TestSequence ones(4, {k1});
  const std::vector<Fault> faults = {
      {q1, 0, false},   // branch into the FF
      {a, -1, false},   // stem
  };
  const auto r = sim.run_serial(ones, faults);
  // Both detected, but the stem is visible at `buf` a cycle earlier.
  ASSERT_EQ(r.num_detected(), 2u);
  EXPECT_GT(r.detect_cycle[0], r.detect_cycle[1]);
}

}  // namespace
}  // namespace fsct
