#include "atpg/unroll.h"

#include <gtest/gtest.h>

#include "bench_circuits/paper_examples.h"
#include "netlist/levelize.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

UnrollSpec basic_spec(const Netlist& nl, int frames) {
  UnrollSpec s;
  s.base = &nl;
  s.frames = frames;
  s.controllable_state.assign(nl.dffs().size(), 1);
  s.observable_ff.assign(nl.dffs().size(), 1);
  return s;
}

TEST(Unroll, OneFrameShape) {
  const Netlist nl = small_pipeline();  // 3 PIs, 3 FFs, 2 gates
  const UnrolledModel m = unroll(basic_spec(nl, 1));
  EXPECT_EQ(m.frames(), 1);
  EXPECT_EQ(m.nl.validate(), "");
  // 3 state inputs + 3 PIs + 2 gates + 3 caps = 11 nodes.
  EXPECT_EQ(m.nl.size(), 11u);
  // Observations: 1 PO copy + 3 caps.
  EXPECT_EQ(m.observe.size(), 4u);
  EXPECT_EQ(m.init_state.size(), 3u);
  for (NodeId s : m.init_state) EXPECT_TRUE(m.controllable[s]);
}

TEST(Unroll, FramesChainThroughCaptureBuffers) {
  const Netlist nl = small_pipeline();
  const UnrolledModel m = unroll(basic_spec(nl, 3));
  const NodeId f2 = nl.find("f2");
  const std::size_t ffi = 1;  // f2 is the second DFF
  // Frame-2 Q of f2 must be frame-1 capture buffer.
  EXPECT_EQ(m.map[2][f2], m.cap[1][ffi]);
  EXPECT_EQ(m.map[1][f2], m.cap[0][ffi]);
  EXPECT_EQ(m.map[0][f2], m.init_state[ffi]);
}

TEST(Unroll, FixedPisBecomeSharedConstants) {
  const Netlist nl = small_pipeline();
  UnrollSpec s = basic_spec(nl, 2);
  s.fixed_pis = {{nl.find("c1"), Val::One}};
  const UnrolledModel m = unroll(s);
  const NodeId u0 = m.frame_pi[0][1];  // c1 is input index 1
  const NodeId u1 = m.frame_pi[1][1];
  EXPECT_EQ(u0, u1);
  EXPECT_EQ(m.nl.type(u0), GateType::Const1);
  EXPECT_FALSE(m.controllable[u0]);
}

TEST(Unroll, UncontrollableStateIsNotAssignable) {
  const Netlist nl = small_pipeline();
  UnrollSpec s = basic_spec(nl, 1);
  s.controllable_state.assign(nl.dffs().size(), 0);
  const UnrolledModel m = unroll(s);
  for (NodeId st : m.init_state) EXPECT_FALSE(m.controllable[st]);
}

TEST(Unroll, MapFaultGateFaultInEveryFrame) {
  const Netlist nl = small_pipeline();
  const UnrolledModel m = unroll(basic_spec(nl, 3));
  const Fault f{nl.find("g1"), -1, true};
  const auto sites = m.map_fault(f);
  ASSERT_EQ(sites.size(), 3u);
  for (int fr = 0; fr < 3; ++fr) {
    EXPECT_EQ(sites[static_cast<std::size_t>(fr)].node,
              m.map[static_cast<std::size_t>(fr)][nl.find("g1")]);
    EXPECT_EQ(sites[static_cast<std::size_t>(fr)].value, k1);
  }
}

TEST(Unroll, MapFaultDffOutputCoversInitAndCaps) {
  const Netlist nl = small_pipeline();
  const UnrolledModel m = unroll(basic_spec(nl, 2));
  const Fault f{nl.find("f1"), -1, false};
  const auto sites = m.map_fault(f);
  // init_state + 2 caps = 3 sites.
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].node, m.init_state[0]);
  EXPECT_EQ(sites[1].node, m.cap[0][0]);
  EXPECT_EQ(sites[2].node, m.cap[1][0]);
}

TEST(Unroll, MapFaultDffPinTargetsCaptureBuffers) {
  const Netlist nl = small_pipeline();
  const UnrolledModel m = unroll(basic_spec(nl, 2));
  const Fault f{nl.find("f3"), 0, true};
  const auto sites = m.map_fault(f);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].node, m.cap[0][2]);
  EXPECT_EQ(sites[0].pin, 0);
}

TEST(Unroll, MapFaultOnFixedPiDeduplicates) {
  const Netlist nl = small_pipeline();
  UnrollSpec s = basic_spec(nl, 3);
  s.fixed_pis = {{nl.find("c1"), Val::One}};
  const UnrolledModel m = unroll(s);
  const Fault f{nl.find("c1"), -1, false};
  const auto sites = m.map_fault(f);
  EXPECT_EQ(sites.size(), 1u);  // the shared constant node, once
}

TEST(Unroll, UnrolledCircuitSimulatesLikeSequential) {
  // Pair-simulate the fault-free unrolled pipeline and compare with the
  // sequential semantics by hand: f2@c1 = NAND(f1@1, c1@1).
  const Netlist nl = small_pipeline();
  UnrollSpec s = basic_spec(nl, 2);
  const UnrolledModel m = unroll(s);
  Levelizer lv(m.nl);
  PairSim sim(lv);
  sim.init({});
  // Set: f1 initial state 1, then pi@0 = 0 so f1@c0 = 0; c1 = 1 both frames.
  sim.set_source(m.init_state[0], k1);
  sim.set_source(m.frame_pi[0][0], k0);  // pi
  sim.set_source(m.frame_pi[0][1], k1);  // c1
  sim.set_source(m.frame_pi[1][1], k1);
  // Frame 0: g1 = NAND(f1=1, c1=1) = 0 -> cap f2@c0 = 0.
  EXPECT_EQ(sim.value(m.cap[0][1]).g, k0);
  // Frame 1: f1@1 = cap f1@c0 = pi@0 = 0; g1@1 = NAND(0,1) = 1.
  EXPECT_EQ(sim.value(m.cap[1][1]).g, k1);
}

TEST(Unroll, PrunedModelFoldsFrozenLogic) {
  // c2 fixed to 1 makes g2 = NOR(f2, 1) = 0 constant: with pruning rooted at
  // the PO side everything behind the frozen net folds away.
  const Netlist nl = small_pipeline();
  Levelizer lv(nl);
  std::vector<Val> values(nl.size(), Val::X);
  values[nl.find("c2")] = k1;
  CombSim csim(lv);
  csim.run(values);
  ASSERT_EQ(values[nl.find("g2")], k0);

  const Fault f{nl.find("g1"), -1, false};
  const auto cone = fault_forward_closure(lv, f.node);
  const std::vector<NodeId> roots{nl.find("f2"), f.node};
  const auto keep = compute_keep_mask(lv, values, cone, roots);
  EXPECT_TRUE(keep[nl.find("g1")]);
  EXPECT_TRUE(keep[nl.find("f1")]);
  EXPECT_FALSE(keep[nl.find("c2")]);  // frozen PI folds

  UnrollSpec s = basic_spec(nl, 2);
  s.fixed_pis = {{nl.find("c2"), Val::One}};
  s.keep = &keep;
  s.fold_values = &values;
  const UnrolledModel m = unroll(s);
  EXPECT_EQ(m.nl.validate(), "");
  // f3 was not kept: no capture buffers for it.
  EXPECT_EQ(m.cap[0][2], kNullNode);
  const auto sites = m.map_fault(f);
  EXPECT_EQ(sites.size(), 2u);
}

TEST(Unroll, BadSpecsThrow) {
  const Netlist nl = small_pipeline();
  UnrollSpec s;
  EXPECT_THROW(unroll(s), std::invalid_argument);
  s = basic_spec(nl, 0);
  EXPECT_THROW(unroll(s), std::invalid_argument);
  s = basic_spec(nl, 1);
  s.controllable_state.pop_back();
  EXPECT_THROW(unroll(s), std::invalid_argument);
  s = basic_spec(nl, 1);
  std::vector<char> keep(nl.size(), 1);
  s.keep = &keep;  // without fold_values
  EXPECT_THROW(unroll(s), std::invalid_argument);
}

}  // namespace
}  // namespace fsct
