// Coverage for the PODEM engine options: wall-clock budget, frontier cap,
// and backtrack accounting.
#include <gtest/gtest.h>

#include <chrono>

#include "atpg/podem.h"
#include "atpg/unroll.h"
#include "bench_circuits/generator.h"
#include "fault/fault.h"
#include "netlist/levelize.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

struct Hard {
  Netlist nl;
  Levelizer lv;
  std::vector<char> ctrl;
  Hard()
      : nl(make()), lv(nl), ctrl(nl.size(), 0) {
    for (NodeId pi : nl.inputs()) ctrl[pi] = 1;
  }
  static Netlist make() {
    RandomCircuitSpec spec;
    spec.num_gates = 2500;
    spec.num_ffs = 0;
    spec.num_pis = 24;
    spec.num_pos = 2;  // few observation points: deep hard cones
    spec.seed = 1234;
    return make_random_sequential(spec);
  }
};

TEST(PodemOptions, TimeLimitAbortsQuickly) {
  Hard h;
  AtpgOptions opt;
  opt.backtrack_limit = 1 << 30;  // effectively unlimited
  opt.time_limit_ms = 50;
  Podem podem(h.lv, h.ctrl, h.nl.outputs(), opt);
  const auto faults = collapsed_fault_list(h.nl);
  const auto t0 = std::chrono::steady_clock::now();
  int aborted = 0;
  for (std::size_t i = 0; i < faults.size() && i < 40; i += 7) {
    const FaultSite s{faults[i].node, faults[i].pin,
                      faults[i].stuck_one ? k1 : k0};
    const AtpgResult r = podem.generate(std::span(&s, 1));
    aborted += (r.status == AtpgStatus::Aborted);
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  // 6 calls at <= 50ms (+ slack) each.
  EXPECT_LT(secs, 3.0);
  (void)aborted;
}

TEST(PodemOptions, TinyFrontierCapStillDetectsEasyFaults) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b}, "g");
  const NodeId y = nl.add_gate(GateType::Not, {g}, "y");
  nl.mark_output(y);
  Levelizer lv(nl);
  std::vector<char> ctrl(nl.size(), 0);
  ctrl[a] = ctrl[b] = 1;
  AtpgOptions opt;
  opt.frontier_cap = 1;
  Podem podem(lv, ctrl, {y}, opt);
  const FaultSite s{g, -1, k0};
  EXPECT_EQ(podem.generate(std::span(&s, 1)).status, AtpgStatus::Detected);
}

TEST(PodemOptions, BacktrackCountReported) {
  // XOR tree where the first backtrace guess sometimes fails: backtracks > 0
  // for at least one target while everything still resolves.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId x1 = nl.add_gate(GateType::Xor, {a, b}, "x1");
  const NodeId g1 = nl.add_gate(GateType::And, {x1, c}, "g1");
  nl.mark_output(g1);
  Levelizer lv(nl);
  std::vector<char> ctrl(nl.size(), 0);
  ctrl[a] = ctrl[b] = ctrl[c] = 1;
  Podem podem(lv, ctrl, {g1});
  const auto faults = collapsed_fault_list(nl);
  for (const Fault& f : faults) {
    const FaultSite s{f.node, f.pin, f.stuck_one ? k1 : k0};
    const AtpgResult r = podem.generate(std::span(&s, 1));
    EXPECT_NE(r.status, AtpgStatus::Aborted) << fault_name(nl, f);
    EXPECT_GE(r.backtracks, 0);
    EXPECT_GE(r.decisions, 0);
  }
}

TEST(PodemOptions, ReusableAcrossFaults) {
  // One engine, many targets: internal scratch state must fully reset.
  Hard h;
  Podem podem(h.lv, h.ctrl, h.nl.outputs(), AtpgOptions{300});
  const auto faults = collapsed_fault_list(h.nl);
  const FaultSite s0{faults[0].node, faults[0].pin,
                     faults[0].stuck_one ? k1 : k0};
  const AtpgResult first = podem.generate(std::span(&s0, 1));
  for (int i = 0; i < 3; ++i) {
    const FaultSite sx{faults[10 + i].node, faults[10 + i].pin,
                       faults[10 + i].stuck_one ? k1 : k0};
    podem.generate(std::span(&sx, 1));
  }
  const AtpgResult again = podem.generate(std::span(&s0, 1));
  EXPECT_EQ(first.status, again.status);
  EXPECT_EQ(first.decisions, again.decisions);
  EXPECT_EQ(first.backtracks, again.backtracks);
}

}  // namespace
}  // namespace fsct
