#include "atpg/scoap.h"

#include <gtest/gtest.h>

namespace fsct {
namespace {

struct Built {
  Netlist nl;
  Levelizer lv;
  Scoap s;
  Built(Netlist n, std::vector<char> ctrl)
      : nl(std::move(n)), lv(nl), s(compute_scoap(lv, ctrl)) {}
};

std::vector<char> all_controllable(const Netlist& nl) {
  std::vector<char> c(nl.size(), 0);
  for (NodeId pi : nl.inputs()) c[pi] = 1;
  return c;
}

TEST(Scoap, PrimaryInputsCostOne) {
  Netlist nl("t");
  nl.add_input("a");
  Built b(std::move(nl), {1});
  EXPECT_EQ(b.s.cc0[0], 1u);
  EXPECT_EQ(b.s.cc1[0], 1u);
}

TEST(Scoap, UncontrollableInputIsInfinite) {
  Netlist nl("t");
  nl.add_input("a");
  Built b(std::move(nl), {0});
  EXPECT_EQ(b.s.cc0[0], kInfCost);
  EXPECT_EQ(b.s.cc1[0], kInfCost);
}

TEST(Scoap, ConstantsFreeForOwnValueOnly) {
  Netlist nl("t");
  const NodeId c0 = nl.add_const(false, "c0");
  const NodeId c1 = nl.add_const(true, "c1");
  nl.add_input("a");  // keep levelizer happy about sizes
  Built b(std::move(nl), {0, 0, 1});
  EXPECT_EQ(b.s.cc0[c0], 0u);
  EXPECT_EQ(b.s.cc1[c0], kInfCost);
  EXPECT_EQ(b.s.cc1[c1], 0u);
  EXPECT_EQ(b.s.cc0[c1], kInfCost);
}

TEST(Scoap, AndGateRules) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b_ = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b_}, "g");
  auto ctrl = all_controllable(nl);
  Built b(std::move(nl), std::move(ctrl));
  (void)a;
  // cc1 = cc1(a)+cc1(b)+1 = 3; cc0 = min(cc0)+1 = 2.
  EXPECT_EQ(b.s.cc1[g], 3u);
  EXPECT_EQ(b.s.cc0[g], 2u);
}

TEST(Scoap, NandInvertsCosts) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b_ = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Nand, {a, b_}, "g");
  auto ctrl = all_controllable(nl);
  Built b(std::move(nl), std::move(ctrl));
  EXPECT_EQ(b.s.cc0[g], 3u);
  EXPECT_EQ(b.s.cc1[g], 2u);
}

TEST(Scoap, NotSwapsCosts) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, {a}, "n");
  const NodeId g = nl.add_gate(GateType::And, {n, n}, "g");
  auto ctrl = all_controllable(nl);
  Built b(std::move(nl), std::move(ctrl));
  EXPECT_EQ(b.s.cc0[n], 2u);
  EXPECT_EQ(b.s.cc1[n], 2u);
  EXPECT_GT(b.s.cc1[g], b.s.cc1[n]);
}

TEST(Scoap, XorParityCosts) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b_ = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Xor, {a, b_}, "g");
  auto ctrl = all_controllable(nl);
  Built b(std::move(nl), std::move(ctrl));
  // even parity (00 or 11): 2; odd: 2; plus gate cost 1.
  EXPECT_EQ(b.s.cc0[g], 3u);
  EXPECT_EQ(b.s.cc1[g], 3u);
}

TEST(Scoap, InfinitePropagatesThroughGates) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");  // controllable
  const NodeId u = nl.add_input("u");  // uncontrollable
  const NodeId g = nl.add_gate(GateType::And, {a, u}, "g");
  Built b(std::move(nl), {1, 0});
  EXPECT_EQ(b.s.cc1[g], kInfCost);       // needs u=1: impossible
  EXPECT_EQ(b.s.cc0[g], 2u);             // a=0 suffices
}

TEST(Scoap, UncontrollableDffQ) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff(a, "q");
  const NodeId g = nl.add_gate(GateType::Buf, {q}, "g");
  std::vector<char> ctrl(nl.size(), 0);
  ctrl[a] = 1;
  Built b(std::move(nl), ctrl);
  EXPECT_EQ(b.s.cc0[g], kInfCost);
  // Controllable pseudo-PI state:
  Netlist nl2("t2");
  const NodeId a2 = nl2.add_input("a");
  const NodeId q2 = nl2.add_dff(a2, "q");
  const NodeId g2 = nl2.add_gate(GateType::Buf, {q2}, "g");
  std::vector<char> ctrl2(nl2.size(), 0);
  ctrl2[a2] = 1;
  ctrl2[q2] = 1;
  Built b2(std::move(nl2), ctrl2);
  EXPECT_EQ(b2.s.cc0[g2], 2u);
}

TEST(Scoap, MuxCosts) {
  Netlist nl("t");
  const NodeId s = nl.add_input("s");
  const NodeId d0 = nl.add_input("d0");
  const NodeId d1 = nl.add_input("d1");
  const NodeId m = nl.add_gate(GateType::Mux, {s, d0, d1}, "m");
  auto ctrl = all_controllable(nl);
  Built b(std::move(nl), std::move(ctrl));
  // cheapest: sel + data + 1 = 3.
  EXPECT_EQ(b.s.cc0[m], 3u);
  EXPECT_EQ(b.s.cc1[m], 3u);
}

}  // namespace
}  // namespace fsct
