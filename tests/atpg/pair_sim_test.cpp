#include "atpg/pair_sim.h"

#include <gtest/gtest.h>

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;
constexpr Val kX = Val::X;

struct Built {
  Netlist nl;
  Levelizer lv;
  PairSim sim;
  explicit Built(Netlist n) : nl(std::move(n)), lv(nl), sim(lv) {}
};

Netlist and_tree() {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g1 = nl.add_gate(GateType::And, {a, b}, "g1");
  nl.add_gate(GateType::Or, {g1, c}, "g2");
  return nl;
}

TEST(PairSim, InitIsAllXWithConstants) {
  Netlist nl("t");
  const NodeId c1 = nl.add_const(true, "c1");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::And, {c1, a}, "g");
  Built b(std::move(nl));
  b.sim.init({});
  EXPECT_EQ(b.sim.value(c1).g, k1);
  EXPECT_EQ(b.sim.value(a).g, kX);
  EXPECT_EQ(b.sim.value(g).g, kX);
  EXPECT_FALSE(b.sim.any_effect());
}

TEST(PairSim, SetSourcePropagates) {
  Built b(and_tree());
  b.sim.init({});
  b.sim.set_source(b.nl.find("a"), k1);
  b.sim.set_source(b.nl.find("b"), k1);
  EXPECT_EQ(b.sim.value(b.nl.find("g1")).g, k1);
  EXPECT_EQ(b.sim.value(b.nl.find("g2")).g, k1);
  b.sim.set_source(b.nl.find("a"), kX);  // un-assign
  EXPECT_EQ(b.sim.value(b.nl.find("g1")).g, kX);
}

TEST(PairSim, OutputSiteCreatesD) {
  Built b(and_tree());
  const NodeId g1 = b.nl.find("g1");
  const FaultSite site[] = {{g1, -1, k0}};  // g1 s-a-0
  b.sim.init(site);
  b.sim.set_source(b.nl.find("a"), k1);
  b.sim.set_source(b.nl.find("b"), k1);
  const PairVal v = b.sim.value(g1);
  EXPECT_EQ(v.g, k1);
  EXPECT_EQ(v.f, k0);
  EXPECT_TRUE(has_effect(v));
  EXPECT_TRUE(b.sim.any_effect());
}

TEST(PairSim, EffectPropagatesAndMasks) {
  Built b(and_tree());
  const FaultSite site[] = {{b.nl.find("g1"), -1, k0}};
  b.sim.init(site);
  b.sim.set_source(b.nl.find("a"), k1);
  b.sim.set_source(b.nl.find("b"), k1);
  b.sim.set_source(b.nl.find("c"), k0);
  EXPECT_TRUE(has_effect(b.sim.value(b.nl.find("g2"))));  // D reaches g2
  b.sim.set_source(b.nl.find("c"), k1);  // OR side input masks
  EXPECT_FALSE(has_effect(b.sim.value(b.nl.find("g2"))));
  EXPECT_EQ(b.sim.value(b.nl.find("g2")).g, k1);
}

TEST(PairSim, PinSiteOnlyAffectsFaultyComponentOfThatGate) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Buf, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  Built b(std::move(nl));
  const FaultSite site[] = {{g1, 0, k0}};
  b.sim.init(site);
  b.sim.set_source(a, k1);
  EXPECT_TRUE(has_effect(b.sim.value(g1)));
  EXPECT_FALSE(has_effect(b.sim.value(g2)));
  EXPECT_EQ(b.sim.value(a).f, k1);  // the stem itself is healthy
}

TEST(PairSim, InputOutputSite) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  Built b(std::move(nl));
  const FaultSite site[] = {{a, -1, k1}};  // a s-a-1
  b.sim.init(site);
  EXPECT_EQ(b.sim.value(a).f, k1);
  EXPECT_EQ(b.sim.value(a).g, kX);
  b.sim.set_source(a, k0);
  EXPECT_TRUE(has_effect(b.sim.value(a)));
  EXPECT_TRUE(has_effect(b.sim.value(g)));
  EXPECT_EQ(b.sim.value(g).f, k0);
}

TEST(PairSim, MultipleSitesSameFault) {
  // Two sites of "the same" stuck line across two frame copies.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Buf, {a}, "g1");
  const NodeId b2 = nl.add_input("b");
  const NodeId g2 = nl.add_gate(GateType::Buf, {b2}, "g2");
  Built b(std::move(nl));
  const FaultSite sites[] = {{g1, -1, k0}, {g2, -1, k0}};
  b.sim.init(sites);
  b.sim.set_source(a, k1);
  b.sim.set_source(b2, k1);
  EXPECT_TRUE(has_effect(b.sim.value(g1)));
  EXPECT_TRUE(has_effect(b.sim.value(g2)));
}

TEST(PairSim, EffectNetsTracksLiveEffects) {
  Built b(and_tree());
  const FaultSite site[] = {{b.nl.find("g1"), -1, k0}};
  b.sim.init(site);
  b.sim.set_source(b.nl.find("a"), k1);
  b.sim.set_source(b.nl.find("b"), k1);
  b.sim.set_source(b.nl.find("c"), k0);
  const auto& nets = b.sim.effect_nets();
  EXPECT_EQ(nets.size(), 2u);  // g1 and g2
  b.sim.set_source(b.nl.find("b"), k0);  // deactivate the fault
  EXPECT_FALSE(b.sim.any_effect());
  EXPECT_TRUE(b.sim.effect_nets().empty());
}

TEST(PairSim, ReInitClearsPreviousFault) {
  Built b(and_tree());
  const FaultSite site[] = {{b.nl.find("g1"), -1, k0}};
  b.sim.init(site);
  b.sim.set_source(b.nl.find("a"), k1);
  b.sim.set_source(b.nl.find("b"), k1);
  EXPECT_TRUE(b.sim.any_effect());
  b.sim.init({});
  EXPECT_FALSE(b.sim.any_effect());
  EXPECT_EQ(b.sim.value(b.nl.find("g1")).g, kX);
}

TEST(PairSim, RejectsSequentialNetlists) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  nl.add_dff(a, "q");
  Built b(std::move(nl));
  EXPECT_THROW(b.sim.init({}), std::logic_error);
}

}  // namespace
}  // namespace fsct
