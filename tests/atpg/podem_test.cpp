#include "atpg/podem.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_circuits/generator.h"
#include "fault/comb_fault_sim.h"
#include "fault/fault.h"

namespace fsct {
namespace {

constexpr Val k0 = Val::Zero;
constexpr Val k1 = Val::One;

struct Built {
  Netlist nl;
  Levelizer lv;
  std::vector<char> ctrl;
  Podem podem;
  Built(Netlist n, std::vector<NodeId> observe, AtpgOptions opt = {})
      : nl(std::move(n)),
        lv(nl),
        ctrl(make_ctrl(nl)),
        podem(lv, ctrl, std::move(observe), opt) {}
  static std::vector<char> make_ctrl(const Netlist& nl) {
    std::vector<char> c(nl.size(), 0);
    for (NodeId pi : nl.inputs()) c[pi] = 1;
    return c;
  }
};

// Verifies a PODEM test by simulation.
bool test_detects(const Levelizer& lv, const std::vector<NodeId>& observe,
                  const FaultSite& site, const AtpgResult& res) {
  PairSim sim(lv);
  sim.init(std::span(&site, 1));
  for (auto [pi, v] : res.assignment) sim.set_source(pi, v);
  for (NodeId o : observe) {
    if (has_effect(sim.value(o))) return true;
  }
  return false;
}

TEST(Podem, DetectsAndGateFaults) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  Built bb(std::move(nl), {g});
  for (bool sv : {false, true}) {
    const FaultSite site{g, -1, sv ? k1 : k0};
    const AtpgResult r = bb.podem.generate(std::span(&site, 1));
    ASSERT_EQ(r.status, AtpgStatus::Detected) << (sv ? "s-a-1" : "s-a-0");
    EXPECT_TRUE(test_detects(bb.lv, {g}, site, r));
  }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = OR(a, NOT(a)) == 1 always; y s-a-1 is undetectable.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, {a}, "n");
  const NodeId y = nl.add_gate(GateType::Or, {a, n}, "y");
  nl.mark_output(y);
  Built bb(std::move(nl), {y});
  const FaultSite site{y, -1, k1};
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  EXPECT_EQ(r.status, AtpgStatus::Untestable);
}

TEST(Podem, PropagatesThroughReconvergence) {
  // Classic reconvergent structure: fault must sensitise one branch and keep
  // the other non-masking.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g1 = nl.add_gate(GateType::And, {a, b}, "g1");
  const NodeId g2 = nl.add_gate(GateType::And, {a, c}, "g2");
  const NodeId y = nl.add_gate(GateType::Or, {g1, g2}, "y");
  nl.mark_output(y);
  Built bb(std::move(nl), {y});
  const FaultSite site{a, -1, k0};
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  ASSERT_EQ(r.status, AtpgStatus::Detected);
  EXPECT_TRUE(test_detects(bb.lv, {y}, site, r));
}

TEST(Podem, PinFaultTargeted) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::Nand, {a, b}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  nl.mark_output(g1);
  nl.mark_output(g2);
  Built bb(std::move(nl), {g1, g2});
  const FaultSite site{g1, 0, k1};  // branch of a into g1 s-a-1
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  ASSERT_EQ(r.status, AtpgStatus::Detected);
  EXPECT_TRUE(test_detects(bb.lv, {g1, g2}, site, r));
  // The test must set a=0 (activation) and b=1 (propagation through NAND).
  for (auto [pi, v] : r.assignment) {
    if (pi == a) EXPECT_EQ(v, k0);
    if (pi == b) EXPECT_EQ(v, k1);
  }
}

TEST(Podem, XorPropagation) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(GateType::Xor, {a, b}, "y");
  nl.mark_output(y);
  Built bb(std::move(nl), {y});
  const FaultSite site{a, -1, k1};
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  ASSERT_EQ(r.status, AtpgStatus::Detected);
  EXPECT_TRUE(test_detects(bb.lv, {y}, site, r));
}

TEST(Podem, MuxPropagation) {
  Netlist nl("t");
  const NodeId s = nl.add_input("s");
  const NodeId d0 = nl.add_input("d0");
  const NodeId d1 = nl.add_input("d1");
  const NodeId y = nl.add_gate(GateType::Mux, {s, d0, d1}, "y");
  nl.mark_output(y);
  Built bb(std::move(nl), {y});
  const FaultSite site{d1, -1, k0};
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  ASSERT_EQ(r.status, AtpgStatus::Detected);
  EXPECT_TRUE(test_detects(bb.lv, {y}, site, r));
}

TEST(Podem, UnobservableFaultUntestable) {
  // Gate with no path to any observation point.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId dead = nl.add_gate(GateType::Not, {a}, "dead");
  const NodeId y = nl.add_gate(GateType::Buf, {a}, "y");
  nl.mark_output(y);
  Built bb(std::move(nl), {y});
  const FaultSite site{dead, -1, k0};
  const AtpgResult r = bb.podem.generate(std::span(&site, 1));
  EXPECT_EQ(r.status, AtpgStatus::Untestable);
}

TEST(Podem, UncontrollableActivationUntestable) {
  // Activation requires an uncontrollable input.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");   // controllable
  const NodeId u = nl.add_input("u");   // not controllable
  const NodeId g = nl.add_gate(GateType::And, {a, u}, "g");
  nl.mark_output(g);
  Netlist copy = nl;  // keep names for assertions
  Levelizer lv(copy);
  std::vector<char> ctrl(copy.size(), 0);
  ctrl[a] = 1;
  Podem podem(lv, ctrl, {g});
  const FaultSite site{u, -1, k0};  // need u=1 to activate: impossible
  const AtpgResult r = podem.generate(std::span(&site, 1));
  EXPECT_EQ(r.status, AtpgStatus::Untestable);
}

TEST(Podem, BacktrackLimitAborts) {
  // A hard random circuit with a tiny backtrack budget must abort (not hang).
  RandomCircuitSpec spec;
  spec.num_gates = 400;
  spec.num_ffs = 0;
  spec.num_pis = 12;
  spec.num_pos = 3;
  spec.seed = 5;
  Netlist nl = make_random_sequential(spec);
  Levelizer lv(nl);
  std::vector<char> ctrl(nl.size(), 0);
  for (NodeId pi : nl.inputs()) ctrl[pi] = 1;
  Podem podem(lv, ctrl, nl.outputs(), AtpgOptions{0});
  int aborted = 0;
  const auto faults = collapsed_fault_list(nl);
  for (std::size_t i = 0; i < faults.size() && i < 50; ++i) {
    const FaultSite site{faults[i].node, faults[i].pin,
                         faults[i].stuck_one ? k1 : k0};
    const AtpgResult r = podem.generate(std::span(&site, 1));
    aborted += (r.status == AtpgStatus::Aborted);
  }
  EXPECT_GE(aborted, 0);  // primarily: terminates
}

// Property: on random combinational circuits every Detected result is
// verified by independent fault simulation, and coverage is high.
class PodemRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemRandom, DetectedTestsAreRealAndCoverageHigh) {
  RandomCircuitSpec spec;
  spec.num_gates = 200;
  spec.num_ffs = 0;
  spec.num_pis = 10;
  spec.num_pos = 6;
  spec.seed = GetParam();
  Netlist nl = make_random_sequential(spec);
  Levelizer lv(nl);
  std::vector<char> ctrl(nl.size(), 0);
  for (NodeId pi : nl.inputs()) ctrl[pi] = 1;
  Podem podem(lv, ctrl, nl.outputs(), AtpgOptions{500});

  const auto faults = collapsed_fault_list(nl);
  std::size_t detected = 0, untestable = 0, aborted = 0, bogus = 0;
  for (const Fault& f : faults) {
    const FaultSite site{f.node, f.pin, f.stuck_one ? k1 : k0};
    const AtpgResult r = podem.generate(std::span(&site, 1));
    switch (r.status) {
      case AtpgStatus::Detected: {
        PairSim sim(lv);
        sim.init(std::span(&site, 1));
        for (auto [pi, v] : r.assignment) sim.set_source(pi, v);
        bool seen = false;
        for (NodeId o : nl.outputs()) seen |= has_effect(sim.value(o));
        if (!seen) ++bogus;
        ++detected;
        break;
      }
      case AtpgStatus::Untestable: ++untestable; break;
      default: ++aborted; break;
    }
  }
  EXPECT_EQ(bogus, 0u);
  // Random mapped-style logic carries real redundancy (~20% of faults are
  // untestable), so demand resolution, not raw detection: nearly every fault
  // must end Detected or proven Untestable, with few aborts.
  EXPECT_GT(detected, faults.size() / 2) << "coverage too low";
  EXPECT_GT(detected + untestable, faults.size() * 9 / 10);
  EXPECT_LT(aborted, faults.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemRandom,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace fsct
