#include "netlist/bench_io.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

TEST(BenchIo, ParsesS27) {
  const Netlist nl = iscas_s27();
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.num_gates(), 10u);
  EXPECT_EQ(nl.validate(), "");
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist nl = iscas_s27();
  const std::string text = write_bench_string(nl);
  const Netlist nl2 = read_bench_string(text, "s27rt");
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  EXPECT_EQ(nl2.dffs().size(), nl.dffs().size());
  EXPECT_EQ(nl2.num_gates(), nl.num_gates());
  // Connectivity by name.
  for (NodeId id = 0; id < nl.size(); ++id) {
    const NodeId id2 = nl2.find(nl.node_name(id));
    ASSERT_NE(id2, kNullNode) << nl.node_name(id);
    EXPECT_EQ(nl2.type(id2), nl.type(id));
    ASSERT_EQ(nl2.fanins(id2).size(), nl.fanins(id).size());
    for (std::size_t p = 0; p < nl.fanins(id).size(); ++p) {
      EXPECT_EQ(nl2.node_name(nl2.fanins(id2)[p]),
                nl.node_name(nl.fanins(id)[p]));
    }
  }
}

TEST(BenchIo, AcceptsCommentsAndBlankLines) {
  const Netlist nl = read_bench_string(
      "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(b)\nb = NOT(a)  # trail\n",
      "c");
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.type(nl.find("b")), GateType::Not);
}

TEST(BenchIo, ForwardReferencesResolve) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = AND(m, a)\nm = NOT(a)\n", "fwd");
  EXPECT_EQ(nl.fanins(nl.find("y"))[0], nl.find("m"));
}

TEST(BenchIo, DffForwardReferenceThroughCycleResolves) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(q, a)\n", "loop");
  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.fanins(nl.find("q"))[0], nl.find("d"));
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Netlist nl = read_bench_string(
      "input(a)\noutput(y)\ny = nand(a, a)\n", "ci");
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Nand);
}

TEST(BenchIo, BuffAliasAccepted) {
  const Netlist nl =
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n", "b");
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Buf);
}

TEST(BenchIo, UndefinedSignalFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND(a, ghost)\n", "x"),
               std::runtime_error);
}

TEST(BenchIo, UndefinedOutputFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(ghost)\n", "x"),
               std::runtime_error);
}

TEST(BenchIo, RedefinitionFails) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", "x"),
      std::runtime_error);
}

TEST(BenchIo, CombinationalCycleFails) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nu = AND(a, v)\nv = AND(a, u)\n", "x"),
      std::runtime_error);
}

TEST(BenchIo, UnknownGateFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = FROB(a)\n", "x"),
               std::runtime_error);
}

TEST(BenchIo, MuxAndConstParse) {
  const Netlist nl = read_bench_string(
      "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "z = CONST1()\ny = MUX(s, a, b)\n",
      "m");
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Mux);
  EXPECT_EQ(nl.type(nl.find("z")), GateType::Const1);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"), std::runtime_error);
}

}  // namespace
}  // namespace fsct
