#include "netlist/stats.h"

#include <gtest/gtest.h>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

TEST(Stats, S27Counts) {
  const NetlistStats s = compute_stats(iscas_s27());
  EXPECT_EQ(s.pis, 4u);
  EXPECT_EQ(s.pos, 1u);
  EXPECT_EQ(s.ffs, 3u);
  EXPECT_EQ(s.gates, 10u);
  EXPECT_EQ(s.count(GateType::Not), 2u);
  EXPECT_EQ(s.count(GateType::Nor), 3u);
  EXPECT_EQ(s.count(GateType::Nand), 2u);
  EXPECT_EQ(s.count(GateType::And), 1u);
  EXPECT_EQ(s.count(GateType::Or), 2u);
  EXPECT_EQ(s.inverting_gates, 7u);
  EXPECT_GT(s.max_depth, 2);
}

TEST(Stats, FanoutAndFanin) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Not, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::And, {a, g1}, "g2");
  nl.mark_output(g2);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.max_fanout, 2u);  // a feeds g1 and g2
  EXPECT_DOUBLE_EQ(s.avg_fanin, 1.5);  // (1 + 2) / 2
}

TEST(Stats, GeneratorMatchesRequestedMix) {
  RandomCircuitSpec spec;
  spec.num_gates = 500;
  spec.num_ffs = 20;
  spec.seed = 5;
  const NetlistStats s = compute_stats(make_random_sequential(spec));
  EXPECT_EQ(s.gates, 500u);
  // NAND-dominant mapped-style mix.
  EXPECT_GT(s.count(GateType::Nand), s.count(GateType::Xor));
  EXPECT_GT(s.inverting_gates, s.gates / 3);
}

TEST(Stats, StringRenderingMentionsEverything) {
  const std::string s = stats_string(compute_stats(iscas_s27()));
  EXPECT_NE(s.find("gates 10"), std::string::npos);
  EXPECT_NE(s.find("FFs 3"), std::string::npos);
  EXPECT_NE(s.find("NAND=2"), std::string::npos);
}

TEST(Stats, InvalidNetlistSkipsDepth) {
  Netlist nl("t");
  nl.add_dff_floating("q");  // unconnected: not levelizable
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.max_depth, 0);
  EXPECT_EQ(s.ffs, 1u);
}

}  // namespace
}  // namespace fsct
