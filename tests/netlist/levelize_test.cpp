#include "netlist/levelize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_circuits/generator.h"
#include "bench_circuits/paper_examples.h"

namespace fsct {
namespace {

Netlist diamond() {
  // a -> n1 -> n3; a -> n2 -> n3 (reconvergent)
  Netlist nl("diamond");
  const NodeId a = nl.add_input("a");
  const NodeId n1 = nl.add_gate(GateType::Not, {a}, "n1");
  const NodeId n2 = nl.add_gate(GateType::Buf, {a}, "n2");
  nl.add_gate(GateType::And, {n1, n2}, "n3");
  return nl;
}

TEST(Levelizer, LevelsAreFaninPlusOne) {
  const Netlist nl = diamond();
  const Levelizer lv(nl);
  EXPECT_EQ(lv.level(nl.find("a")), 0);
  EXPECT_EQ(lv.level(nl.find("n1")), 1);
  EXPECT_EQ(lv.level(nl.find("n2")), 1);
  EXPECT_EQ(lv.level(nl.find("n3")), 2);
  EXPECT_EQ(lv.max_level(), 2);
}

TEST(Levelizer, TopoOrderRespectsDependencies) {
  const Netlist nl = diamond();
  const Levelizer lv(nl);
  const auto& topo = lv.topo_order();
  ASSERT_EQ(topo.size(), 3u);
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId g : topo) {
    for (NodeId f : nl.fanins(g)) {
      if (is_combinational(nl.type(f))) EXPECT_LT(pos[f], pos[g]);
    }
  }
}

TEST(Levelizer, FanoutsSymmetricWithFanins) {
  const Netlist nl = iscas_s27();
  const Levelizer lv(nl);
  for (NodeId id = 0; id < nl.size(); ++id) {
    for (NodeId f : nl.fanins(id)) {
      const auto& fo = lv.fanouts(f);
      EXPECT_NE(std::find(fo.begin(), fo.end(), id), fo.end());
    }
  }
}

TEST(Levelizer, DffBreaksLevels) {
  Netlist nl("seq");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff_floating("q");
  const NodeId g = nl.add_gate(GateType::And, {a, q}, "g");
  nl.set_fanin(q, 0, g);
  const Levelizer lv(nl);
  EXPECT_EQ(lv.level(q), 0);  // Q is a level-0 source
  EXPECT_EQ(lv.level(g), 1);
}

TEST(Levelizer, ThrowsOnCombinationalCycle) {
  Netlist nl("cyc");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff_floating("q");
  const NodeId g1 = nl.add_gate(GateType::And, {a, q}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Or, {g1, a}, "g2");
  nl.set_fanin(q, 0, g2);
  nl.set_fanin(g1, 1, g2);
  EXPECT_THROW(Levelizer{nl}, std::runtime_error);
}

TEST(Levelizer, ThrowsOnUnconnectedPin) {
  Netlist nl("un");
  nl.add_dff_floating("q");
  EXPECT_THROW(Levelizer{nl}, std::runtime_error);
}

TEST(Levelizer, ForwardConeStopsAtDff) {
  const Netlist nl = small_pipeline();
  const Levelizer lv(nl);
  const auto cone = lv.forward_cone(nl.find("f1"));
  // f1 -> g1 -> f2 (stop; f2's fanouts not entered)
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("g1")), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("f2")), cone.end());
  EXPECT_EQ(std::find(cone.begin(), cone.end(), nl.find("g2")), cone.end());
}

TEST(Levelizer, BackwardConeStopsAtSources) {
  const Netlist nl = small_pipeline();
  const Levelizer lv(nl);
  const auto cone = lv.backward_cone(nl.find("g2"));
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("f2")), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("c2")), cone.end());
  // does not cross the f2 boundary into g1
  EXPECT_EQ(std::find(cone.begin(), cone.end(), nl.find("g1")), cone.end());
}

TEST(Levelizer, RandomCircuitsLevelize) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomCircuitSpec spec;
    spec.num_gates = 300;
    spec.num_ffs = 20;
    spec.seed = seed;
    const Netlist nl = make_random_sequential(spec);
    const Levelizer lv(nl);
    EXPECT_EQ(lv.topo_order().size(), nl.num_gates());
  }
}

}  // namespace
}  // namespace fsct
