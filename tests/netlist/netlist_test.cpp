#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fsct {
namespace {

TEST(Netlist, AddInputAssignsIdsInOrder) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.type(a), GateType::Input);
}

TEST(Netlist, FindByName) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  EXPECT_EQ(nl.find("a"), a);
  EXPECT_EQ(nl.find("nope"), kNullNode);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl("t");
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, EmptyNameThrows) {
  Netlist nl("t");
  EXPECT_THROW(nl.add_input(""), std::invalid_argument);
}

TEST(Netlist, GateArityChecked) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::Not, {a, a}, "n"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::Mux, {a, a}, "m"), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_gate(GateType::And, {a}, "one_input_and"));
}

TEST(Netlist, AddGateRejectsSequentialTypes) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::Dff, {a}, "d"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::Input, {}, "i"), std::invalid_argument);
}

TEST(Netlist, DffTracksD) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff(a, "q");
  EXPECT_EQ(nl.type(q), GateType::Dff);
  EXPECT_EQ(nl.fanins(q)[0], a);
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, FloatingDffValidatesOnlyWhenConnected) {
  Netlist nl("t");
  const NodeId q = nl.add_dff_floating("q");
  EXPECT_NE(nl.validate(), "");
  const NodeId a = nl.add_input("a");
  nl.set_fanin(q, 0, a);
  EXPECT_EQ(nl.validate(), "");
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  nl.mark_output(a);
  nl.mark_output(a);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_TRUE(nl.is_output(a));
  nl.unmark_output(a);
  EXPECT_FALSE(nl.is_output(a));
}

TEST(Netlist, ReplaceFaninRewiresAllMatchingPins) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, a}, "g");
  EXPECT_EQ(nl.replace_fanin(g, a, b), 2);
  EXPECT_EQ(nl.fanins(g)[0], b);
  EXPECT_EQ(nl.fanins(g)[1], b);
}

TEST(Netlist, InsertOnEdgeSplicesOnlyThatPin) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId c = nl.add_input("c");
  const NodeId g1 = nl.add_gate(GateType::Buf, {a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Buf, {a}, "g2");
  const NodeId tp = nl.insert_on_edge(a, g1, 0, GateType::And, {c}, "tp");
  EXPECT_EQ(nl.fanins(g1)[0], tp);
  EXPECT_EQ(nl.fanins(g2)[0], a);  // other fanout untouched
  EXPECT_EQ(nl.fanins(tp)[0], a);
  EXPECT_EQ(nl.fanins(tp)[1], c);
}

TEST(Netlist, InsertOnEdgeRejectsWrongDriver) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Buf, {a}, "g");
  EXPECT_THROW(nl.insert_on_edge(b, g, 0, GateType::And, {}, "tp"),
               std::invalid_argument);
}

TEST(Netlist, NumGatesCountsOnlyCombinational) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, {a}, "g");
  nl.add_dff(g, "q");
  nl.add_const(false, "c0");
  EXPECT_EQ(nl.num_gates(), 1u);
}

TEST(Netlist, ValidateDetectsCombinationalCycle) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff_floating("q");
  const NodeId g1 = nl.add_gate(GateType::And, {a, q}, "g1");
  const NodeId g2 = nl.add_gate(GateType::Or, {g1, a}, "g2");
  nl.set_fanin(q, 0, g2);
  EXPECT_EQ(nl.validate(), "");  // loop through DFF is fine
  // Force a real combinational cycle.
  nl.set_fanin(g1, 1, g2);
  EXPECT_NE(nl.validate(), "");
}

TEST(Netlist, GateTypeNames) {
  EXPECT_EQ(gate_type_name(GateType::Nand), "NAND");
  EXPECT_EQ(gate_type_name(GateType::Dff), "DFF");
  EXPECT_TRUE(is_source(GateType::Const1));
  EXPECT_FALSE(is_source(GateType::Buf));
  EXPECT_TRUE(is_combinational(GateType::Xor));
  EXPECT_FALSE(is_combinational(GateType::Dff));
}

}  // namespace
}  // namespace fsct
